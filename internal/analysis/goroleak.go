package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroScopes names the packages whose goroutines run on (or under) the
// request path: the serving tier plus core, whose stage goroutines and
// round-pool workers every request borrows. A goroutine spawned here
// without a provable termination edge accumulates once per request — the
// million-user fleet leaks it a million times.
var goroScopes = []string{
	"anytime/internal/serve",
	"anytime/internal/cluster",
	"anytime/internal/daemon",
	"anytime/internal/reqtrace",
	"anytime/internal/core",
}

// GoroLeakAnalyzer convicts fire-and-forget goroutines in the request-path
// packages: every `go` statement must carry one of the provable
// termination edges the runtime actually uses —
//
//   - joined: the body calls Done on a sync.WaitGroup that the same
//     package Waits on (the health sweep, the stage fan-out);
//   - ctx-bounded: the body receives from a context's Done channel, or
//     every loop in it makes a call that takes a context and has a return
//     path (the WaitNewer watcher loops);
//   - stop-channel: the body selects on a `chan struct{}` stop/done
//     channel or a timer channel (the health-check loop, StopAfter);
//   - bounded handshake: a loop-free body whose only blocking sends go to
//     channels created with non-zero capacity in the spawning function
//     (the hedge race's results channel);
//   - park protocol: a worker loop whose blocking receives come from a
//     buffered channel field and whose loop exits on a field-guarded
//     return (the PR 7 roundPool quit/wake protocol).
//
// Everything else is a leak conviction. Goroutines provably terminating by
// protocol the analyzer cannot see get a justified //lint:ignore.
var GoroLeakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc: "report request-path goroutines without a provable termination " +
		"edge (ctx.Done select, WaitGroup join, stop channel, bounded " +
		"handshake, or park protocol)",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) (interface{}, error) {
	if !inScopes(pass.Pkg, goroScopes) {
		return nil, nil
	}
	info := pass.TypesInfo

	// Package-wide context: which WaitGroup objects are ever Waited on,
	// and which channel-typed struct fields are ever assigned a buffered
	// make (the park protocol's wake channels).
	waited := make(map[types.Object]bool)
	bufferedFields := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeMethod(info, n); fn != nil && fn.Name() == "Wait" && isWaitGroupMethod(fn) {
					if obj := receiverObject(info, n); obj != nil {
						waited[obj] = true
					}
				}
			case *ast.AssignStmt:
				recordBufferedFieldMakes(info, n, bufferedFields)
			}
			return true
		})
	}

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g, waited, bufferedFields)
			return true
		})
	}
	return nil, nil
}

// isWaitGroupMethod reports whether fn is a method of sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func) bool {
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	n, ok := deref(recv.Type()).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// recordBufferedFieldMakes notes struct-field channels assigned a
// `make(chan T, n)` with n > 0 — the wake channels a parked worker may
// safely block on, because the protocol guarantees a token.
func recordBufferedFieldMakes(info *types.Info, assign *ast.AssignStmt, out map[types.Object]bool) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			continue
		}
		if !isPositiveConst(info, call.Args[1]) {
			continue
		}
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				out[s.Obj()] = true
			}
		}
	}
}

func isPositiveConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() != "0"
}

// spawnSite is the context a go statement's body is judged in.
type spawnSite struct {
	pass *Pass
	g    *ast.GoStmt
	// body is the spawned code: the literal's body, or the resolved
	// declaration's body for `go obj.method(...)`.
	body *ast.BlockStmt
	// encl is the function declaration containing the go statement.
	encl *ast.FuncDecl
	// waited / bufferedFields: package-wide context.
	waited         map[types.Object]bool
	bufferedFields map[types.Object]bool
}

func checkGoStmt(pass *Pass, g *ast.GoStmt, waited, bufferedFields map[types.Object]bool) {
	info := pass.TypesInfo
	site := spawnSite{pass: pass, g: g, waited: waited, bufferedFields: bufferedFields, encl: enclosingDecl(pass, g)}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		site.body = fun.Body
	default:
		fn := calleeFunc(info, g.Call)
		if fn == nil {
			pass.Reportf(g.Pos(), "goroutine spawns a dynamic function value: no termination edge is provable; name the function or select on ctx.Done inside it")
			return
		}
		decl := funcDeclFor(pass.Files, info, fn)
		if decl == nil || decl.Body == nil {
			// Spawning an out-of-package function: check the terminates fact
			// exported when that package was analyzed.
			if _, ok := passFacts(pass).Get(fn, "goroleak.terminates"); ok {
				return
			}
			pass.Reportf(g.Pos(),
				"goroutine runs %s, declared outside this package with no exported termination fact: wrap it in a supervised loop or justify with //lint:ignore", fn.Name())
			return
		}
		site.body = decl.Body
	}
	if reason := site.terminates(); reason == "" {
		pass.Reportf(g.Pos(),
			"fire-and-forget goroutine: no provable termination edge (want a ctx.Done select, a WaitGroup joined in this package, a stop-channel select, a bounded channel handshake, or the round-pool park protocol)")
	}
}

// terminates returns the name of the first termination edge proved for the
// spawned body, or "" when none holds.
func (s *spawnSite) terminates() string {
	if s.joined() {
		return "joined"
	}
	if s.ctxDone() {
		return "ctxdone"
	}
	if s.stopChannel() {
		return "stopchan"
	}
	if s.parkProtocol() {
		return "park"
	}
	if s.ctxBoundedLoops() {
		return "ctxcall"
	}
	if s.boundedHandshake() {
		return "bounded"
	}
	return ""
}

// joined: the body calls wg.Done() (usually deferred) on a WaitGroup that
// this package Waits on. The join point may live in another goroutine of
// the same function (the automaton's finisher) or another method (the
// pool), so the Wait set is package-wide.
func (s *spawnSite) joined() bool {
	info := s.pass.TypesInfo
	found := false
	ast.Inspect(s.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if fn := calleeMethod(info, call); fn != nil && fn.Name() == "Done" && isWaitGroupMethod(fn) {
			if obj := receiverObject(info, call); obj != nil && s.waited[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// ctxDone: the body receives from some context's Done channel (directly or
// in a select). Whoever owns that context can end this goroutine.
func (s *spawnSite) ctxDone() bool {
	info := s.pass.TypesInfo
	found := false
	ast.Inspect(s.body, func(n ast.Node) bool {
		if found {
			return false
		}
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			return true
		}
		if call, ok := ast.Unparen(ue.X).(*ast.CallExpr); ok {
			if fn := calleeMethod(info, call); fn != nil && fn.Name() == "Done" {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if tv, ok := info.Types[sel.X]; ok && isContextType(tv.Type) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// stopChannel: the body selects on (or receives from) a `chan struct{}`
// stop/done channel. Closing the channel releases the goroutine; the close
// lives with the owner's Stop. Timer channels deliberately don't qualify:
// `for { <-t.C }` wakes forever, it doesn't terminate.
func (s *spawnSite) stopChannel() bool {
	info := s.pass.TypesInfo
	found := false
	ast.Inspect(s.body, func(n ast.Node) bool {
		if found {
			return false
		}
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			return true
		}
		tv, ok := info.Types[ue.X]
		if !ok {
			return true
		}
		ch, ok := types.Unalias(tv.Type).Underlying().(*types.Chan)
		if !ok {
			return true
		}
		if isEmptyStruct(ch.Elem()) {
			found = true
		}
		return !found
	})
	return found
}

// parkProtocol: every blocking receive in the body reads a buffered
// channel stored in a struct field (the wake token), and the body's loop
// has a field-guarded return (the quit flag) — the roundPool worker shape.
func (s *spawnSite) parkProtocol() bool {
	info := s.pass.TypesInfo
	receives := 0
	fieldReceives := 0
	guardedReturn := false
	ast.Inspect(s.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			receives++
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				if s2, ok := info.Selections[sel]; ok && s2.Kind() == types.FieldVal && s.bufferedFields[s2.Obj()] {
					fieldReceives++
				}
			}
		case *ast.IfStmt:
			if !refersToField(info, n.Cond) {
				return true
			}
			for _, st := range n.Body.List {
				if _, ok := st.(*ast.ReturnStmt); ok {
					guardedReturn = true
				}
			}
		}
		return true
	})
	return guardedReturn && receives > 0 && receives == fieldReceives
}

// ctxBoundedLoops: every for loop in the body makes a call that receives a
// context (so cancelling that context unblocks it) and the body has a
// return path; loop-free bodies don't qualify here (boundedHandshake
// covers them).
func (s *spawnSite) ctxBoundedLoops() bool {
	info := s.pass.TypesInfo
	loops := 0
	bounded := 0
	hasReturn := false
	ast.Inspect(s.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			hasReturn = true
		case *ast.ForStmt:
			loops++
			if loopHasCtxCall(info, n.Body) {
				bounded++
			}
		case *ast.RangeStmt:
			loops++
			// Ranges over slices/maps/ints are bounded by their operand;
			// ranging a channel blocks until someone closes it, which is
			// exactly the edge this classifier cannot see here.
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := types.Unalias(tv.Type).Underlying().(*types.Chan); !isChan {
					bounded++
				}
			}
		}
		return true
	})
	return loops > 0 && loops == bounded && hasReturn
}

func loopHasCtxCall(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// boundedHandshake: a loop-free body whose channel sends all target
// buffered channels created in the spawning function, and whose receives
// (if any) are stop-channel/timer shaped (checked above). Such a body runs
// to completion as soon as its calls return — nothing can block it
// indefinitely on the handshake itself.
func (s *spawnSite) boundedHandshake() bool {
	info := s.pass.TypesInfo
	// Channels made buffered in the enclosing function.
	buffered := make(map[types.Object]bool)
	if s.encl != nil {
		ast.Inspect(s.encl, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					continue
				}
				if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
					continue
				}
				if !isPositiveConst(info, call.Args[1]) {
					continue
				}
				if lid, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := info.Defs[lid]; obj != nil {
						buffered[obj] = true
					} else if obj := info.Uses[lid]; obj != nil {
						buffered[obj] = true
					}
				}
			}
			return true
		})
	}
	ok := true
	ast.Inspect(s.body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			ok = false
		case *ast.SendStmt:
			target := ast.Unparen(n.Chan)
			id, isIdent := target.(*ast.Ident)
			if !isIdent || !buffered[info.Uses[id]] {
				ok = false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = false // a plain receive can block forever
			}
		}
		return ok
	})
	return ok
}

// refersToField reports whether e mentions a struct-field selection.
func refersToField(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				found = true
			}
		}
		return !found
	})
	return found
}

func isEmptyStruct(t types.Type) bool {
	st, ok := types.Unalias(t).Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// enclosingDecl finds the function declaration containing n.
func enclosingDecl(pass *Pass, n ast.Node) *ast.FuncDecl {
	for _, f := range pass.Files {
		if n.Pos() < f.Pos() || n.Pos() > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= n.Pos() && n.Pos() <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// passFacts returns the pass's fact store, never nil.
func passFacts(pass *Pass) *FactStore {
	if pass.Facts == nil {
		pass.Facts = NewFactStore()
	}
	return pass.Facts
}
