package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the suppression marker: a comment of the form
//
//	//lint:ignore <analyzer> <one-line justification>
//
// on the flagged line or the line immediately above it silences that
// analyzer there. The justification is mandatory — a bare ignore is itself
// reported — so every suppression in the tree documents why the convicted
// pattern is intentional (the conformance self-tests plant violations on
// purpose, for example).
const ignorePrefix = "//lint:ignore "

// ignoreIndex records, per file line, which analyzers are suppressed.
type ignoreIndex struct {
	fset *token.FileSet
	// byLine maps filename → line → analyzer names suppressed there
	// ("*" suppresses all).
	byLine map[string]map[int][]string
	// malformed collects ignore directives missing a justification.
	malformed []Diagnostic
}

// buildIgnoreIndex scans the files' comments for ignore directives. A
// directive covers its own line and the line below it (the usual
// line-above placement).
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{fset: fset, byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  "lint:ignore directive needs an analyzer name and a justification",
						Analyzer: "ignore",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
				lines[pos.Line+1] = append(lines[pos.Line+1], name)
			}
		}
	}
	return idx
}

// suppressed reports whether d is covered by an ignore directive.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	pos := idx.fset.Position(d.Pos)
	for _, name := range idx.byLine[pos.Filename][pos.Line] {
		if name == d.Analyzer || name == "*" {
			return true
		}
	}
	return false
}

// RunPackage executes the analyzers over pkg, applying ignore directives,
// and returns the surviving diagnostics in source order. Facts exported by
// the analyzers land in a fresh throwaway store; multi-package drivers use
// RunPackageFacts to thread one store through in dependency order.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunPackageFacts(fset, pkg, analyzers, NewFactStore())
}

// RunPackageFacts is RunPackage with an explicit fact store: facts exported
// while analyzing this package accumulate into facts, and facts already
// present (from upstream packages) are visible to the analyzers.
func RunPackageFacts(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFactStore()
	}
	idx := buildIgnoreIndex(fset, pkg.Files)
	diags := append([]Diagnostic(nil), idx.malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			if !idx.suppressed(d) {
				diags = append(diags, d)
			}
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sortDiagnostics(fset, diags)
	return diags, nil
}
