package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// Each analyzer runs over a fixture that plants its known failure modes
// (the double-writer goroutine, the mutated snapshot, the copied Buffer,
// wall-clock in a replay package, the unguarded hook call) next to the
// clean idioms it must not convict.

func TestSingleWriterFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, SingleWriterAnalyzer, "singlewriter")
}

func TestSnapshotMutFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, SnapshotMutAnalyzer, "snapshotmut")
}

func TestAtomicFieldFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, AtomicFieldAnalyzer, "atomicfield")
}

func TestDetNonDetFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, DetNonDetAnalyzer, "detnondet")
}

// TestDetNonDetOutOfScope runs the same nondeterminism patterns in a
// package outside the replay scope: zero diagnostics expected.
func TestDetNonDetOutOfScope(t *testing.T) {
	t.Parallel()
	RunFixture(t, DetNonDetAnalyzer, "detscope")
}

func TestHookNilFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, HookNilAnalyzer, "hooknil")
}

// TestIgnoreDirectiveSuppresses runs singlewriter over a fixture whose only
// violation carries a justified //lint:ignore: the run must come back
// clean.
func TestIgnoreDirectiveSuppresses(t *testing.T) {
	t.Parallel()
	RunFixture(t, SingleWriterAnalyzer, "ignores")
}

// checkSource type-checks an inline snippet (no imports) and runs the given
// analyzers over it.
func checkSource(t *testing.T, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing snippet: %v", err)
	}
	pkg, err := CheckFiles(fset, "p", "", []*ast.File{f}, nil, nil)
	if err != nil {
		t.Fatalf("type-checking snippet: %v", err)
	}
	diags, err := RunPackage(fset, pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return diags
}

// TestBareIgnoreIsItselfReported: a directive without a justification is a
// diagnostic, not a suppression — every ignore in the tree must say why.
func TestBareIgnoreIsItselfReported(t *testing.T) {
	t.Parallel()
	diags := checkSource(t, `package p

func f() int {
	//lint:ignore singlewriter
	return 0
}
`, All())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "ignore" || !strings.Contains(diags[0].Message, "justification") {
		t.Fatalf("unexpected diagnostic: %s: %s", diags[0].Analyzer, diags[0].Message)
	}
}

// TestIgnoreWrongAnalyzerDoesNotSuppress: naming the wrong analyzer leaves
// the real diagnostic standing.
func TestIgnoreWrongAnalyzerDoesNotSuppress(t *testing.T) {
	t.Parallel()
	diags := checkSource(t, `package p

type Hooks struct{ F func() }

func call(h Hooks) {
	//lint:ignore snapshotmut wrong analyzer named on purpose
	h.F()
}
`, []*Analyzer{HookNilAnalyzer})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want the unguarded hook call: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "hooknil" {
		t.Fatalf("unexpected analyzer %q", diags[0].Analyzer)
	}
}

func TestByName(t *testing.T) {
	t.Parallel()
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the suite analyzer", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName of an unknown name must be nil")
	}
}

func TestCtxFlowFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, CtxFlowAnalyzer, "ctxflow")
}

// TestCtxFlowOutOfScope runs the same root-context patterns in a package
// outside the request-path scope: zero diagnostics expected.
func TestCtxFlowOutOfScope(t *testing.T) {
	t.Parallel()
	RunFixture(t, CtxFlowAnalyzer, "ctxscope")
}

func TestGoroLeakFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, GoroLeakAnalyzer, "goroleak")
}

func TestBudgetFlowFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, BudgetFlowAnalyzer, "budgetflow")
}

func TestHotAllocFixture(t *testing.T) {
	t.Parallel()
	RunFixture(t, HotAllocAnalyzer, "hotalloc")
}
