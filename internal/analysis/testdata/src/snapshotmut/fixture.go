package snapshotmut

// mutateDirect writes straight through the snapshot's Value pointer — the
// exact bug the conformance self-test plants dynamically.
func mutateDirect(buf *Buffer[*Image]) {
	snap, ok := buf.Latest()
	if !ok {
		return
	}
	snap.Value.Pix[0] = 1 // want `write into memory aliased by snapshot "snap"`
}

// mutateViaAlias shows taint following a rebound alias of the Value.
func mutateViaAlias(buf *Buffer[*Image]) {
	snap, _ := buf.Latest()
	img := snap.Value
	img.Pix[2] = 3 // want `write into memory aliased by snapshot "img"`
}

// mutateViaCopy writes through the builtin copy.
func mutateViaCopy(buf *Buffer[*Image], scratch []byte) {
	snap, _ := buf.Peek()
	copy(snap.Value.Pix, scratch) // want `copy writes into memory aliased by snapshot "snap"`
}

// mutateIncDec increments in place.
func mutateIncDec(buf *Buffer[*Image]) {
	snap, _ := buf.Latest()
	snap.Value.Pix[0]++ // want `write into memory aliased by snapshot "snap"`
}

// onPublish is an observer callback: its parameter aliases the published
// snapshot the same way an accessor result does.
func onPublish(s Snapshot[*Image]) {
	s.Value.Pix[0] = 9 // want `write into memory aliased by snapshot "s"`
}

type recorder struct {
	keep  *Image
	count uint64
}

// record retains the aliased Value past the publish window without a clone
// (the AccuracyRecorder.CopyOnRecord bug class); counting the scalar
// Version is fine.
func (r *recorder) record(buf *Buffer[*Image]) {
	snap, _ := buf.Latest()
	r.keep = snap.Value // want `retained beyond the publish window`
	r.count = snap.Version
}

var lastFrame *Image

// stash retains into package-level state, which outlives everything.
func stash(buf *Buffer[*Image]) {
	snap, _ := buf.Latest()
	lastFrame = snap.Value // want `retained beyond the publish window`
}

// cloneThenMutate launders through Clone before writing and must pass.
func cloneThenMutate(buf *Buffer[*Image]) {
	snap, _ := buf.Latest()
	img := snap.Value.Clone()
	img.Pix[0] = 1
}

// cloneThenRetain launders before retaining and must pass.
func (r *recorder) cloneThenRetain(buf *Buffer[*Image]) {
	snap, _ := buf.Latest()
	r.keep = snap.Value.Clone()
}

// readOnly only reads the aliased memory and must pass.
func readOnly(buf *Buffer[*Image]) int {
	snap, _ := buf.Latest()
	n := 0
	for _, p := range snap.Value.Pix {
		n += int(p)
	}
	return n
}

// rebindThenClone: rebinding a tainted variable is not a write; a cloned
// copy under a fresh name is freely mutable.
func rebindThenClone(buf *Buffer[*Image]) {
	snap, _ := buf.Latest()
	img := snap.Value
	img2 := img.Clone()
	img2.Pix[0] = 1
}

// localStructField mutates the local Snapshot struct copy, not shared
// memory, and must pass.
func localStructField(buf *Buffer[*Image]) uint64 {
	snap, _ := buf.Latest()
	snap.Version = 0
	return snap.Version
}
