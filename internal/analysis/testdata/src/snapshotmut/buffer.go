// Package snapshotmut exercises the snapshotmut analyzer. Image stands in
// for pix.Image: a published value whose Pix slice aliases the writer's
// tile ring.
package snapshotmut

// Image is a reference-carrying published value.
type Image struct {
	Pix []byte
	W   int
}

// Clone deep-copies, laundering the aliasing.
func (im *Image) Clone() *Image {
	return &Image{Pix: append([]byte(nil), im.Pix...), W: im.W}
}

// Snapshot mirrors core.Snapshot.
type Snapshot[T any] struct {
	Value   T
	Version uint64
	Final   bool
}

// Buffer mirrors core.Buffer's reader surface.
type Buffer[T any] struct {
	cur Snapshot[T]
}

func (b *Buffer[T]) Latest() (Snapshot[T], bool) {
	return b.cur, b.cur.Version > 0
}

func (b *Buffer[T]) Peek() (Snapshot[T], bool) {
	return b.cur, b.cur.Version > 0
}
