// This fixture is named serve to land in the ctxflow analyzer's
// request-path scope, which matches fixtures by package name.
package serve

import (
	"context"
	"net/http"
	"time"
)

func do(ctx context.Context) { _ = ctx }

// mintRoot severs the request's deadline chain both ways a handler can.
func mintRoot(w http.ResponseWriter, r *http.Request) {
	do(context.Background()) // want `context.Background\(\) in a request-path package severs`
	do(context.TODO())       // want `context.TODO\(\) in a request-path package severs`
	do(r.Context())          // ok: the inbound request's context
}

// droppedCancel discards the cancel three ways, each a leak.
func droppedCancel(ctx context.Context) {
	child, _ := context.WithTimeout(ctx, time.Second) // want `cancel from context.WithTimeout assigned to _`
	do(child)
	context.WithCancel(ctx)                                                  // want `result of context.WithCancel discarded`
	child2, cancel := context.WithDeadline(ctx, time.Now().Add(time.Second)) // want `cancel function "cancel" is never called`
	do(child2)
	_ = cancel // placates the compiler; still leaks
}

// properCancel threads and releases correctly: no diagnostics.
func properCancel(ctx context.Context) {
	child, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	do(child)
}

// holder stores a context, the lifetime escape the analyzer forbids.
type holder struct {
	ctx context.Context // want `struct field of type context.Context`
}

func storeCtx(ctx context.Context) {
	var h holder
	h.ctx = ctx            // want `context stored into struct field "ctx"`
	h2 := holder{ctx: ctx} // want `context stored into struct field "ctx" via composite literal`
	_, _ = h, h2
}

// foreign passes contexts that do not descend from this function's own.
func foreign(ctx context.Context) {
	var saved context.Context
	do(saved) // want `context not derived from this function's ctx parameter`
	do(nil)   // want `nil context passed downstream`
	do(ctx)   // ok: the parameter itself
}

// outbound builds requests with and without the caller's context.
func outbound(ctx context.Context) {
	req, _ := http.NewRequest(http.MethodGet, "http://backend/healthz", nil) // want `http.NewRequest builds an uncancellable request`
	_ = req
	req2, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://backend/healthz", nil)
	_, _ = req2, err
}

// derived chains derivations: taint flows through every wrapper that
// accepts the ctx and returns a context.
func derived(ctx context.Context) {
	withVal := context.WithValue(ctx, struct{}{}, 1)
	child, cancel := context.WithTimeout(withVal, time.Second)
	defer cancel()
	do(child)
}

// closureParam: a func literal's own ctx parameter is that closure's
// inbound context, not a foreign one.
func closureParam(ctx context.Context) {
	f := func(ctx context.Context) {
		do(ctx)
	}
	f(ctx)
}
