// Package ignores proves the //lint:ignore escape hatch: a justified
// directive on (or above) the flagged line silences exactly that analyzer
// there. The fixture has no want comments — the suppressed violation must
// produce no diagnostic at all.
package ignores

// Snapshot mirrors core.Snapshot.
type Snapshot[T any] struct {
	Value T
}

// Buffer mirrors core.Buffer's writer surface.
type Buffer[T any] struct {
	cur Snapshot[T]
}

func (b *Buffer[T]) Publish(v T, final bool) (Snapshot[T], error) {
	b.cur = Snapshot[T]{Value: v}
	return b.cur, nil
}

func suppressedDoubleWriter() {
	buf := &Buffer[int]{}
	done := make(chan struct{})
	go func() {
		//lint:ignore singlewriter fixture plants a second writer to prove suppression works
		buf.Publish(1, false)
		close(done)
	}()
	<-done
	buf.Publish(2, true)
}
