// Package singlewriter exercises the singlewriter analyzer. The Buffer and
// Snapshot shapes below mirror core's published surface; the analyzer
// matches the type name, so the fixture stays self-contained.
package singlewriter

// Snapshot mirrors core.Snapshot.
type Snapshot[T any] struct {
	Value   T
	Version uint64
	Final   bool
}

// Buffer mirrors core.Buffer's writer surface.
type Buffer[T any] struct {
	cur Snapshot[T]
}

func (b *Buffer[T]) Publish(v T, final bool) (Snapshot[T], error) {
	b.cur = Snapshot[T]{Value: v, Version: b.cur.Version + 1, Final: final}
	return b.cur, nil
}

func (b *Buffer[T]) Latest() (Snapshot[T], bool) {
	return b.cur, b.cur.Version > 0
}
