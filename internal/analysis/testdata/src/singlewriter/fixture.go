package singlewriter

// ownerPlusGoroutine is the double-writer the conformance self-test plants
// dynamically: the spawning goroutine and a spawned one both publish.
func ownerPlusGoroutine() {
	buf := &Buffer[int]{}
	done := make(chan struct{})
	go func() {
		buf.Publish(1, false) // want `buffer "buf" is published from multiple goroutines`
		close(done)
	}()
	<-done
	buf.Publish(2, true)
}

// twoGoroutines races two distinct go statements on one buffer.
func twoGoroutines() {
	buf := &Buffer[int]{}
	done := make(chan struct{}, 2)
	go func() {
		buf.Publish(1, false) // want `buffer "buf" is published from multiple goroutines`
		done <- struct{}{}
	}()
	go func() {
		buf.Publish(2, true) // want `buffer "buf" is published from multiple goroutines`
		done <- struct{}{}
	}()
	<-done
	<-done
}

// loopedSpawn is the N-workers-one-writer fan-out: every iteration starts
// another writer over the captured buffer.
func loopedSpawn() {
	buf := &Buffer[int]{}
	for i := 0; i < 4; i++ {
		go func(i int) {
			buf.Publish(i, false) // want `published from a goroutine spawned in a loop`
		}(i)
	}
}

// coordinatorPattern is core's DiffusiveWorkers shape and must pass:
// workers compute into private state, only the owner publishes.
func coordinatorPattern() {
	buf := &Buffer[int]{}
	results := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func(i int) { results <- i * i }(i)
	}
	sum := 0
	for i := 0; i < 4; i++ {
		sum += <-results
	}
	buf.Publish(sum, true)
}

// singleSpawnedWriter runs the one writer on its own goroutine — the
// normal stage shape — and must pass.
func singleSpawnedWriter() {
	buf := &Buffer[int]{}
	done := make(chan struct{})
	go func() {
		buf.Publish(1, true)
		close(done)
	}()
	<-done
}

// privateBufferPerGoroutine declares the buffer inside the spawned
// function: iterations never share a writer, so the loop is fine.
func privateBufferPerGoroutine() {
	for i := 0; i < 4; i++ {
		go func(i int) {
			buf := &Buffer[int]{}
			buf.Publish(i, true)
		}(i)
	}
}

// ownerOnly publishes many times from one goroutine; the invariant is one
// writer, not one publish.
func ownerOnly() {
	buf := &Buffer[int]{}
	for i := 0; i < 3; i++ {
		buf.Publish(i, false)
	}
	buf.Publish(3, true)
}
