// This fixture's package name (apps) is outside the deterministic-replay
// scope: the same wall-clock and global-rand calls that convict the
// detnondet fixture must pass here untouched.
package apps

import (
	"math/rand"
	"time"
)

func frameBudget(start time.Time) time.Duration {
	_ = time.Now()
	return time.Since(start)
}

func jitter() int {
	return rand.Intn(16)
}
