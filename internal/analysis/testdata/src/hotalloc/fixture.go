// hotalloc's scope is the //anytime:hotpath annotation itself, so this
// fixture needs no special package name: annotated functions are checked,
// the identical un-annotated twin below is not.
package hot

import "fmt"

type sink interface{ accept() }

type impl struct{ n int }

func (impl) accept() {}

func use(s sink) { _ = s }

//anytime:hotpath
func hotKernel(vals []int, hist map[string]int, out []int) int {
	fmt.Println(len(vals)) // want `fmt.Println in a hotpath`
	total := 0
	for _, v := range hist { // want `map iteration in a hotpath`
		total += v
	}
	for _, v := range vals { // ok: slice range
		total += v
	}
	out = append(out, total) // want `append in a hotpath`
	if len(out) > 0 {
		total += out[0]
	}
	f := func() int { return total } // want `func literal captures enclosing variables in a hotpath`
	_ = f
	g := func(x int) int { return x * 2 } // ok: captures nothing
	_ = g
	return total
}

//anytime:hotpath
func hotBoxing(n int) {
	var s sink
	s = impl{n: n}        // want `interface boxing in a hotpath \(assignment\)`
	use(impl{n: n})       // want `interface boxing in a hotpath \(argument\)`
	v := sink(impl{n: n}) // want `interface boxing in a hotpath \(conversion\)`
	use(s)                // ok: already an interface, no new box
	_ = v
}

//anytime:hotpath
func hotReturn(n int) sink {
	if n == 0 {
		return nil // ok: nil interface, no box
	}
	return impl{n: n} // want `interface boxing in a hotpath \(return\)`
}

// coldKernel is the identical body with no annotation: never checked.
func coldKernel(vals []int, hist map[string]int, out []int) int {
	fmt.Println(len(vals))
	total := 0
	for _, v := range hist {
		total += v
	}
	out = append(out, total)
	f := func() int { return total }
	_ = f
	var s sink = impl{n: total}
	use(s)
	return total
}
