// The same patterns ctxflow convicts, in a package outside the
// request-path scope: a batch tool legitimately mints its own root
// context. Zero diagnostics expected.
package batchtool

import (
	"context"
	"net/http"
)

type job struct {
	ctx context.Context // fine outside the serving tier
}

func boot() {
	ctx := context.Background()
	req, _ := http.NewRequest(http.MethodGet, "http://example/", nil)
	_ = req
	j := job{ctx: ctx}
	_ = j
}
