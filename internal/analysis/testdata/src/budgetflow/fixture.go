// This fixture is named serve so its ParseBudget/ApplyBudget/Run stand-ins
// (mirroring the real serving API) resolve in the budgetflow analyzer's
// source/sink matching, which works by package name. The bodies copy the
// real semantics but keep the fixture self-contained.
package serve

import (
	"context"
	"net/http"
	"time"
)

// ParseBudget mirrors the real serve.ParseBudget: result 0 is a budget.
func ParseBudget(header string) (time.Duration, bool, error) {
	if header == "" {
		return 0, false, nil
	}
	d, err := time.ParseDuration(header)
	return d, err == nil, err
}

// ApplyBudget mirrors the real launder point: result 0 is the effective
// deadline (no longer a raw budget), result 1 the budgeted guard.
func ApplyBudget(deadline, budget time.Duration, ok bool) (time.Duration, bool) {
	if deadline <= 0 || !ok || budget >= deadline {
		return deadline, false
	}
	return budget, true
}

// Run mirrors serve.Run's shape: argument 2 is the deadline.
func Run(ctx context.Context, entry int, deadline time.Duration, hooks *int) error {
	_, _, _, _ = ctx, entry, deadline, hooks
	return nil
}

// Controller mirrors serve.Controller: Scale's argument 1 is the deadline.
type Controller struct{}

func (Controller) Scale(ctx context.Context, deadline time.Duration, depth int) time.Duration {
	return deadline
}

func handler(w http.ResponseWriter, r *http.Request) {
	deadline := 50 * time.Millisecond
	budget, ok, err := ParseBudget(r.Header.Get("X-Anytime-Budget"))
	if err != nil {
		http.Error(w, "bad budget", http.StatusBadRequest)
		return
	}

	padded := budget + time.Millisecond // want `budget widened with "\+"`
	_ = padded
	doubled := budget
	doubled *= 2 // want `budget widened with "\*"=`
	_ = doubled
	loose := max(budget, deadline) // want `budget passed through max\(\)`
	_ = loose
	shrunk := budget - time.Millisecond // ok: shrinking is the protocol
	tighter := min(budget, deadline)    // ok: min only tightens
	_, _ = shrunk, tighter

	_ = Run(r.Context(), 0, budget, nil) // want `raw budget used as a deadline`
	var c Controller
	_ = c.Scale(r.Context(), budget, 1) // want `raw budget used as a deadline`

	_, _ = ApplyBudget(0, budget, ok) // want `budget protocol invoked with a non-positive deadline`

	effective, budgeted := ApplyBudget(deadline, budget, ok)
	_ = Run(r.Context(), 0, effective, nil) // ok: laundered through ApplyBudget

	w.Header().Set("X-Anytime-Budget", budget.String()) // want `X-Anytime-Budget echoed unconditionally`
	if budgeted {
		w.Header().Set("X-Anytime-Budget", budget.String()) // ok: guarded echo
	}
}

// propagate reparses and forwards the budget downstream: setting the header
// on an outbound *request* is the protocol itself, never an echo.
func propagate(ctx context.Context, r *http.Request) {
	budget, _, _ := ParseBudget(r.Header.Get("X-Anytime-Budget"))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://backend/", nil)
	if err != nil {
		return
	}
	req.Header.Set("X-Anytime-Budget", budget.String()) // ok: outbound request, not a response echo
}

// reuses carries budget taint across a function boundary inside the
// package: wrap's result is summarized as budget-carrying, so the widening
// downstream of the call still convicts.
func wrap(r *http.Request) time.Duration {
	budget, _, _ := ParseBudget(r.Header.Get("X-Anytime-Budget"))
	return budget
}

func reuses(r *http.Request) time.Duration {
	b := wrap(r)
	return b * 2 // want `budget widened with "\*"`
}
