// This fixture is named conform to land in the detnondet analyzer's
// deterministic-replay scope, which matches fixtures by package name.
package conform

import (
	"fmt"
	"math/rand"
	"time"
)

// wallClock reads the wall clock twice; replaying a seed cannot reproduce
// either value.
func wallClock() time.Duration {
	t0 := time.Now()      // want `time.Now in a deterministic-replay package`
	return time.Since(t0) // want `time.Since in a deterministic-replay package`
}

// globalRand draws from the process-global source instead of the
// schedule's seeded rng.
func globalRand() int {
	f := rand.Float64() // want `global rand.Float64 in a deterministic-replay package`
	_ = f
	return rand.Intn(16) // want `global rand.Intn in a deterministic-replay package`
}

// seededRand flows every decision from an explicit seed and must pass.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(16)
}

// mapFeedsAppend emits keys in iteration order.
func mapFeedsAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order feeds an append`
		keys = append(keys, k)
	}
	return keys
}

// mapFeedsPrint writes formatted output in iteration order.
func mapFeedsPrint(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds formatted output`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// mapFeedsSend sends in iteration order.
func mapFeedsSend(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration order feeds a channel send`
		ch <- k
	}
}

// commutativeFold is order-independent and must pass.
func commutativeFold(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// sleeping delays without observing the clock and must pass.
func sleeping() {
	time.Sleep(time.Millisecond)
}
