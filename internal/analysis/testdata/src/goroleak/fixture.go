// This fixture is named cluster to land in the goroleak analyzer's
// request-path scope, which matches fixtures by package name. Each spawn
// site either carries one of the provable termination edges (no
// diagnostic) or lacks all of them (want).
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// fireAndForget has no edge at all: the canonical leak.
func fireAndForget() {
	go func() { // want `fire-and-forget goroutine: no provable termination edge`
		for {
			time.Sleep(time.Second)
		}
	}()
}

// dynamicValue spawns a func value the analyzer cannot resolve.
func dynamicValue(f func()) {
	go f() // want `goroutine spawns a dynamic function value`
}

// outOfPackage spawns an imported function with no exported fact.
func outOfPackage() {
	go fmt.Println("boot") // want `goroutine runs Println, declared outside this package`
}

// ctxDone terminates through the context's Done channel.
func ctxDone(ctx context.Context) {
	go func() { // ok: ctx.Done select
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Second):
			}
		}
	}()
}

// joined terminates through a WaitGroup the package waits on.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // ok: joined via wg
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// stopLoop terminates through a chan struct{} its owner closes.
type stopLoop struct {
	stop chan struct{}
}

func (l *stopLoop) start() {
	go func() { // ok: stop-channel select
		for {
			select {
			case <-l.stop:
				return
			case <-time.After(time.Second):
			}
		}
	}()
}

// handshake terminates because its only blocking send targets a buffered
// channel made in the spawning function: the send cannot block.
func handshake() int {
	res := make(chan int, 1)
	go func() { // ok: bounded handshake
		res <- 42
	}()
	return <-res
}

// unbufferedHandshake is the same shape over an unbuffered channel: if the
// receiver gives up, the sender blocks forever.
func unbufferedHandshake() int {
	res := make(chan int)
	go func() { // want `fire-and-forget goroutine: no provable termination edge`
		res <- 42
	}()
	return <-res
}

// timerOnly loops on a ticker with no stop edge: it wakes forever.
func timerOnly() {
	t := time.NewTicker(time.Second)
	go func() { // want `fire-and-forget goroutine: no provable termination edge`
		for range t.C {
		}
	}()
}

// pool reproduces the round-pool park protocol: workers block only on a
// buffered wake channel stored in a field, and exit on a field-guarded
// return.
type poolWorker struct {
	wake chan struct{}
	quit bool
}

type pool struct {
	workers []poolWorker
}

func newPool(n int) *pool {
	p := &pool{workers: make([]poolWorker, n)}
	for i := range p.workers {
		p.workers[i].wake = make(chan struct{}, 1)
		go p.run(&p.workers[i]) // ok: park protocol
	}
	return p
}

func (p *pool) run(w *poolWorker) {
	for {
		<-w.wake
		if w.quit {
			return
		}
	}
}

// ctxLoop terminates because every loop iteration passes ctx to a callee
// that can fail when the context ends, and the body returns on error.
func ctxLoop(ctx context.Context, wait func(context.Context) error) {
	go func() { // ok: ctx-bounded loop
		for {
			if err := wait(ctx); err != nil {
				return
			}
		}
	}()
}
