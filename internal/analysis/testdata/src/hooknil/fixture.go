// Package hooknil exercises the hooknil analyzer: every call through a
// Hooks callback field must be dominated by nil checks of both the Hooks
// pointer and the field (the one-pointer-check guarantee).
package hooknil

// Hooks mirrors core.Hooks: a struct of optional callbacks.
type Hooks struct {
	StageStart func(stage string)
	Checkpoint func(stage string, wait bool)
}

type automaton struct {
	hooks *Hooks
	value Hooks
}

// unguarded panics the stage goroutine the first time no telemetry is
// attached.
func unguarded(hooks *Hooks) {
	hooks.StageStart("demo") // want `without a nil check of hooks` `without a nil check of the StageStart field`
}

// pointerOnlyGuard still dereferences a possibly-nil field.
func pointerOnlyGuard(hooks *Hooks) {
	if hooks != nil {
		hooks.StageStart("demo") // want `without a nil check of the StageStart field`
	}
}

// fieldOnlyGuard dereferences the pointer inside its own guard.
func fieldOnlyGuard(hooks *Hooks) {
	if hooks.Checkpoint != nil {
		hooks.Checkpoint("demo", false) // want `without a nil check of hooks`
	}
}

// guardOutsideGoroutine proves facts do not cross function boundaries: the
// literal may run after the guard's truth has changed.
func guardOutsideGoroutine(hooks *Hooks) {
	if hooks != nil && hooks.StageStart != nil {
		go func() {
			hooks.StageStart("demo") // want `without a nil check of hooks` `without a nil check of the StageStart field`
		}()
	}
}

// fullGuard is the documented contract and must pass.
func fullGuard(hooks *Hooks) {
	if hooks != nil && hooks.StageStart != nil {
		hooks.StageStart("demo")
	}
}

// boundGuard is core's if-bound form and must pass.
func (a *automaton) boundGuard() {
	if h := a.hooks; h != nil && h.Checkpoint != nil {
		h.Checkpoint("demo", true)
	}
}

// earlyReturn proves terminating guards establish facts downstream.
func earlyReturn(hooks *Hooks) {
	if hooks == nil || hooks.StageStart == nil {
		return
	}
	hooks.StageStart("demo")
}

// negatedGuard proves De Morgan handling and must pass.
func negatedGuard(hooks *Hooks) {
	if !(hooks == nil || hooks.StageStart == nil) {
		hooks.StageStart("demo")
	}
}

// elseBranch proves the negative branch of an equality guard and must pass.
func elseBranch(hooks *Hooks) {
	if hooks == nil || hooks.StageStart == nil {
		// no telemetry attached
	} else {
		hooks.StageStart("demo")
	}
}

// valueHooks holds Hooks by value: no pointer to check, only the field.
func valueHooks(a *automaton) {
	if a.value.Checkpoint != nil {
		a.value.Checkpoint("demo", false)
	}
}
