// Package atomicfield exercises the atomicfield analyzer: by-value copies
// of a Buffer whose snapshot cell and version counter are sync/atomic
// values fork the atomic state silently.
package atomicfield

import "sync/atomic"

// Snapshot is the published value.
type Snapshot struct {
	Value   int
	Version uint64
}

// Buffer mirrors core.Buffer's atomic-bearing layout.
type Buffer struct {
	cur      atomic.Pointer[Snapshot]
	consumed atomic.Uint64
}

func (b *Buffer) load() *Snapshot { return b.cur.Load() }

// copyOnAssign forks the buffer: the clone's cells diverge from the
// original's.
func copyOnAssign(b *Buffer) {
	clone := *b // want `assignment copies Buffer contains Pointer by value`
	_ = clone.load()
}

// takeByValue copies at the call boundary.
func takeByValue(b Buffer) uint64 { // want `parameter copies Buffer contains Pointer by value`
	return b.consumed.Load()
}

// returnByValue copies on the way out, twice over.
func returnByValue(b *Buffer) Buffer { // want `result copies Buffer contains Pointer by value`
	return *b // want `return copies Buffer contains Pointer by value`
}

func sink(Buffer) {} // want `parameter copies Buffer contains Pointer by value`

// passByValue copies into an argument slot.
func passByValue(b *Buffer) {
	sink(*b) // want `call argument copies Buffer contains Pointer by value`
}

// rangeCopies copies each element into the range variable.
func rangeCopies(bufs []Buffer) {
	for _, b := range bufs { // want `range clause copies Buffer contains Pointer by value`
		_ = b.load()
	}
}

// sharedByPointer is the correct discipline and must pass.
func sharedByPointer(b *Buffer) *Buffer { return b }

// constructInPlace builds a fresh buffer rather than copying one, and
// passes pointers around; all fine.
func constructInPlace() *Snapshot {
	b := Buffer{}
	p := &b
	return p.load()
}

// rangePointers iterates pointers, sharing rather than forking.
func rangePointers(bufs []*Buffer) uint64 {
	var n uint64
	for _, b := range bufs {
		n += b.consumed.Load()
	}
	return n
}
