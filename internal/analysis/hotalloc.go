package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose body must stay allocation-free:
// the kernel inner loops and the Buffer publish path, where PR 7's
// alloc_guard_test pins zero allocs per op at runtime. hotalloc turns that
// budget into a static gate — the allocation never compiles, instead of
// failing a benchmark assertion after the fact.
const hotpathDirective = "//anytime:hotpath"

// HotAllocAnalyzer convicts, inside any function annotated
// //anytime:hotpath, the constructs that defeat the zero-alloc budget:
//
//   - interface boxing: a concrete value assigned, passed, returned, or
//     converted to an interface type heap-allocates the box (pointer-free
//     words excepted — but the analyzer convicts the pattern, not the
//     escape analysis outcome, because the outcome shifts under inlining);
//   - func literals that capture enclosing variables: the closure and its
//     captured cells escape;
//   - append: growth reallocates; hot paths write into preallocated
//     buffers indexed by position;
//   - map iteration: the hidden iterator allocates and the order is
//     nondeterministic besides (detnondet's concern, but the alloc alone
//     disqualifies it here);
//   - fmt-family calls: every operand boxes into an any slice.
//
// The annotation is the scope: un-annotated functions are never checked,
// and the directive belongs only on functions whose alloc budget a
// benchmark actually pins (see docs/OPERATIONS.md).
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "report allocation-prone constructs (interface boxing, capturing " +
		"closures, append, map iteration, fmt calls) inside functions " +
		"annotated //anytime:hotpath",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !isHotpath(decl) {
				continue
			}
			checkHotFunc(pass, decl)
		}
	}
	return nil, nil
}

// isHotpath reports whether decl's doc comment carries the directive.
func isHotpath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathDirective) {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo

	// Objects declared inside each func literal, to tell captures from
	// locals. Collected up front: an identifier in a literal that resolves
	// to a variable declared in decl but outside the literal is a capture.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesEnclosing(info, n, decl) {
				pass.Reportf(n.Pos(),
					"func literal captures enclosing variables in a hotpath: the closure and its captured cells escape to the heap")
			}
			// Keep descending: the literal's own body obeys the same rules.
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"map iteration in a hotpath: the iterator allocates (and ranges nondeterministically); index a slice instead")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n)
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					if tv, ok := info.Types[n.Lhs[i]]; ok {
						reportBoxing(pass, info, n.Rhs[i], tv.Type, "assignment")
					}
				}
			}
		case *ast.ReturnStmt:
			sig, _ := info.Defs[decl.Name].(*types.Func)
			if sig == nil {
				break
			}
			res := sig.Signature().Results()
			if len(n.Results) == res.Len() {
				for i, e := range n.Results {
					reportBoxing(pass, info, e, res.At(i).Type(), "return")
				}
			}
		}
		return true
	})
}

// checkHotCall convicts fmt calls, appends, interface-boxing arguments, and
// conversions to interface types.
func checkHotCall(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo

	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s in a hotpath: every operand boxes into the variadic any slice; preformat outside the hot loop", fn.Name())
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				pass.Reportf(call.Pos(),
					"append in a hotpath: growth reallocates; write into a preallocated buffer by index")
			}
			return // other builtins (len, cap, copy, min, max) are alloc-free
		}
	}
	// Conversion to an interface type: T(x) with T an interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 {
			reportBoxing(pass, info, call.Args[0], tv.Type, "conversion")
		}
		return
	}
	// Interface-typed parameters receiving concrete arguments.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := types.Unalias(last).Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			reportBoxing(pass, info, arg, pt, "argument")
		}
	}
}

// reportBoxing convicts e when it carries a concrete value into the
// interface-typed destination dst.
func reportBoxing(pass *Pass, info *types.Info, e ast.Expr, dst types.Type, where string) {
	if !isInterface(dst) {
		return
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return // nil interface, no box
	}
	src := tv.Type
	if isInterface(src) {
		return // interface-to-interface, no new box
	}
	if _, isTP := types.Unalias(src).(*types.TypeParam); isTP {
		return // instantiation decides; the concrete instantiation is checked there
	}
	pass.Reportf(e.Pos(),
		"interface boxing in a hotpath (%s): concrete %s converted to %s heap-allocates the box", where, src, dst)
}

// isInterface reports whether t's underlying type is an interface,
// excluding type parameters (whose underlying is an interface constraint).
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := types.Unalias(t).(*types.TypeParam); ok {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Interface)
	return ok
}

// capturesEnclosing reports whether lit references a variable declared in
// decl but outside lit — the capture that forces the closure to allocate.
func capturesEnclosing(info *types.Info, lit *ast.FuncLit, decl *ast.FuncDecl) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		pos := v.Pos()
		// Declared inside the enclosing function but outside the literal.
		if pos >= decl.Pos() && pos <= decl.End() && (pos < lit.Pos() || pos > lit.End()) {
			captured = true
		}
		return !captured
	})
	return captured
}
