package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HookNilAnalyzer enforces the telemetry layer's one-pointer-check
// guarantee: core.Hooks is a struct of optional callback fields, attached
// as a nillable pointer, and the documented contract is that an automaton
// with no hooks pays exactly one nil check on its hot paths — which means
// every call through a Hooks field must be dominated by a nil check of the
// pointer AND of the field:
//
//	if hooks != nil && hooks.Checkpoint != nil {
//	        hooks.Checkpoint(stage, wait)
//	}
//
// (or the if h := c.hooks; h != nil && h.X != nil form, or an early
// `if hooks == nil { return }` guard). An unguarded call panics the stage
// goroutine the first time an automaton runs without telemetry attached —
// in production, under an interrupt, exactly when nobody is watching. The
// analyzer matches any struct type named Hooks whose fields are funcs, so
// it also covers fixture and future observer structs.
var HookNilAnalyzer = &Analyzer{
	Name: "hooknil",
	Doc: "report calls through Hooks callback fields that are not guarded " +
		"by nil checks on both the Hooks pointer and the field",
	Run: runHookNil,
}

func runHookNil(pass *Pass) (interface{}, error) {
	info := pass.TypesInfo
	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if namedName(s.Recv()) != "Hooks" {
			return true
		}
		if _, isFunc := types.Unalias(s.Obj().Type()).Underlying().(*types.Signature); !isFunc {
			return true
		}
		facts := guardFacts(call, stack)
		needRecv := exprString(sel.X)
		needField := needRecv + "." + sel.Sel.Name
		_, isPtr := types.Unalias(typeOfExpr(info, sel.X)).(*types.Pointer)
		if isPtr && !facts[needRecv] {
			pass.Reportf(call.Pos(),
				"call to %s without a nil check of %s: a Hooks pointer is optional by contract (one-pointer-check guarantee)",
				needField, needRecv)
		}
		if !facts[needField] {
			pass.Reportf(call.Pos(),
				"call to %s without a nil check of the %s field: every Hooks callback is optional",
				needField, sel.Sel.Name)
		}
		return true
	})
	return nil, nil
}

func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// guardFacts collects the expressions proven non-nil at the call site:
// conjuncts of enclosing if conditions whose then-branch contains the
// call, and early-return guards (`if x == nil { return }`) preceding the
// call's statement in an enclosing block.
func guardFacts(call ast.Node, stack []ast.Node) map[string]bool {
	facts := make(map[string]bool)
	child := ast.Node(call)
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if n.Body == child {
				collectNonNil(n.Cond, false, facts)
			}
			if n.Else == child {
				// else-branch of `x == nil` proves x non-nil.
				collectNonNil(n.Cond, true, facts)
			}
		case *ast.BlockStmt:
			for _, stmt := range n.List {
				if stmt == child {
					break
				}
				addEarlyReturnFacts(stmt, facts)
			}
		case *ast.FuncDecl, *ast.FuncLit:
			// Facts do not cross function boundaries: the literal may run
			// on another goroutine, after the guard's truth has changed.
			return facts
		}
		child = stack[i]
	}
	return facts
}

// collectNonNil walks a condition's &&-conjuncts (or, when negated, its
// ||-disjuncts under De Morgan) recording `expr != nil` facts.
func collectNonNil(cond ast.Expr, negated bool, facts map[string]bool) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		join, eq, neq := token.LAND, token.EQL, token.NEQ
		if negated {
			join, eq, neq = token.LOR, token.NEQ, token.EQL
		}
		switch c.Op {
		case join:
			collectNonNil(c.X, negated, facts)
			collectNonNil(c.Y, negated, facts)
		case neq:
			if isNilIdent(c.Y) {
				facts[exprString(c.X)] = true
			} else if isNilIdent(c.X) {
				facts[exprString(c.Y)] = true
			}
		case eq:
			// no fact
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			collectNonNil(c.X, !negated, facts)
		}
	}
}

// addEarlyReturnFacts records facts established by a terminating guard:
// `if x == nil { return }` (or ||-combined: `if x == nil || y == nil {
// return }`) proves the operands non-nil for the statements after it.
func addEarlyReturnFacts(stmt ast.Stmt, facts map[string]bool) {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Else != nil || !terminates(ifs.Body) {
		return
	}
	collectNonNil(ifs.Cond, true, facts)
}

// terminates reports whether a block always leaves the enclosing scope
// (return, panic, continue, break, or goto as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := ast.Unparen(last.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
