package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxScopes names the request-path packages: every function there runs on
// behalf of a client request (or of fleet machinery whose lifetime an
// operator must be able to bound), so context must flow from the edge of
// the process to every blocking operation. Fixture packages match by
// package name, the same convention as detnondet.
var ctxScopes = []string{
	"anytime/internal/serve",
	"anytime/internal/cluster",
	"anytime/internal/daemon",
	"anytime/internal/reqtrace",
}

// CtxFlowAnalyzer enforces end-to-end context threading in the serving
// tier (the deadline-contract analogue of the paper's interruptibility:
// a request that cannot be cancelled is a request whose deadline is a
// suggestion). In the request-path packages, non-test files must:
//
//   - never mint a root context: context.Background()/context.TODO() sever
//     the chain from the client's deadline (handlers take r.Context(),
//     library code takes a ctx parameter);
//   - never drop the cancel returned by context.WithCancel/WithTimeout/
//     WithDeadline (assigning it to _ or letting it go unused leaks the
//     child context's timer and goroutine until the parent ends);
//   - never store a context into a struct field (a stored ctx outlives the
//     request and silently revives it later; pass ctx as a parameter);
//   - thread the function's own ctx to every downstream call that accepts
//     one: passing a context not derived from the ctx parameter (or from
//     a request's .Context()) detaches the callee from the caller's
//     deadline;
//   - build outbound requests with http.NewRequestWithContext, not
//     http.NewRequest (whose Background context makes the probe or proxy
//     leg uncancellable).
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "report broken context threading in the request-path packages: " +
		"root contexts, dropped cancels, ctx struct fields, and downstream " +
		"calls that bypass the caller's ctx",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) (interface{}, error) {
	if !inScopes(pass.Pkg, ctxScopes) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkCtxFields(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			decl, ok := n.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				return true
			}
			checkCtxFunc(pass, decl)
			return false
		})
	}
	return nil, nil
}

// checkCtxFields convicts struct types declaring a context.Context field.
func checkCtxFields(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
				pass.Reportf(field.Pos(),
					"struct field of type context.Context: a stored ctx outlives its request; pass ctx as a parameter instead")
			}
		}
		return true
	})
}

// checkCtxFunc applies the flow rules inside one function declaration.
func checkCtxFunc(pass *Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo

	// The function's context roots: ctx-typed parameters of the
	// declaration and of every function literal inside it (a literal's own
	// ctx param is that closure's inbound context — the router's upstream
	// `do: func(ctx context.Context)` shape).
	ctxParams := make(map[types.Object]bool)
	addParams := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					ctxParams[obj] = true
				}
			}
		}
	}
	addParams(decl.Type)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addParams(lit.Type)
		}
		return true
	})

	// Derivation taint: objects holding a context derived from a root.
	// Roots: the ctx parameters plus X.Context() method results (the
	// inbound request's context) and reqtrace.New's rewrapped context.
	st := runTaint([]*ast.File{wrapDecl(decl)}, info, taintConfig{
		rootObject: func(obj types.Object) bool { return ctxParams[obj] },
		rootCall: func(call *ast.CallExpr) []int {
			if fn := calleeMethod(info, call); fn != nil && fn.Name() == "Context" &&
				fn.Signature().Results().Len() == 1 && isContextType(fn.Signature().Results().At(0).Type()) {
				return []int{0}
			}
			return nil
		},
		passthrough: func(call *ast.CallExpr, argIdx int) []int {
			// Any call that accepts the tainted ctx and returns a context
			// derives it: context.WithCancel/WithTimeout/WithValue,
			// reqtrace.New/NewContext, custom wrappers.
			arg := call.Args[argIdx]
			if tv, ok := info.Types[arg]; !ok || !isContextType(tv.Type) {
				return nil
			}
			var out []int
			sig := callSignature(info, call)
			if sig == nil {
				return nil
			}
			for i := 0; i < sig.Results().Len(); i++ {
				if isContextType(sig.Results().At(i).Type()) {
					out = append(out, i)
				}
			}
			return out
		},
	}, nil, "")

	hasCtx := len(ctxParams) > 0
	cancelObjs := make(map[types.Object]bool)

	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCtxCall(pass, st, n, hasCtx)
		case *ast.AssignStmt:
			// Dropped cancel: `ctx, _ := context.WithTimeout(...)`, and
			// collection of cancel objects for the use check below.
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isWithCancelFamily(info, call) {
					checkCancelBinding(pass, info, n, call, cancelObjs)
				}
			}
			// ctx stored into a struct field.
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal && isContextType(s.Obj().Type()) {
						pass.Reportf(lhs.Pos(),
							"context stored into struct field %q: a stored ctx outlives its request; pass ctx as a parameter instead", s.Obj().Name())
					}
				}
			}
		case *ast.CompositeLit:
			checkCtxCompositeLit(pass, info, n)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isWithCancelFamily(info, call) {
				pass.Reportf(call.Pos(),
					"result of %s discarded: the cancel function must be called or the child context leaks", withCancelName(info, call))
			}
		}
		return true
	})

	// Every bound cancel must be genuinely used: called, deferred, passed,
	// stored, or returned. `_ = cancel` placates the compiler but still
	// leaks the context, so blank-discarded references don't count.
	discarded := make(map[token.Pos]bool)
	ast.Inspect(decl, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		allBlank := true
		for _, lhs := range assign.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
				allBlank = false
			}
		}
		if !allBlank {
			return true
		}
		for _, rhs := range assign.Rhs {
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
				discarded[id.Pos()] = true
			}
		}
		return true
	})
	du := buildDefUse([]*ast.File{wrapDecl(decl)}, info)
	for obj := range cancelObjs {
		uses := 0
		for _, id := range du.uses[obj] {
			if id.Pos() != obj.Pos() && !discarded[id.Pos()] {
				uses++
			}
		}
		if uses == 0 {
			pass.Reportf(obj.Pos(),
				"cancel function %q is never called: the context from %s leaks its timer until the parent context ends", obj.Name(), "context.With*")
		}
	}
}

// checkCtxCall applies the per-call rules: root contexts, unthreaded
// contexts, and context-less request construction.
func checkCtxCall(pass *Pass, st *taintState, call *ast.CallExpr, hasCtx bool) {
	info := pass.TypesInfo
	if fn := calleePkgFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
		switch fn.Name() {
		case "Background", "TODO":
			pass.Reportf(call.Pos(),
				"context.%s() in a request-path package severs the caller's deadline and cancellation: thread ctx from the request instead", fn.Name())
			return
		}
	}
	if fn := calleePkgFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "NewRequest" {
		pass.Reportf(call.Pos(),
			"http.NewRequest builds an uncancellable request: use http.NewRequestWithContext with the caller's ctx")
		return
	}
	if !hasCtx {
		return
	}
	// Threading: every ctx-typed argument must derive from this function's
	// own ctx (or an inbound request's). Root-context calls were reported
	// above; everything else untainted is a foreign or nil context. A bare
	// nil has no context type of its own, so it is caught by the parameter
	// type instead.
	sig := callSignature(info, call)
	for i, arg := range call.Args {
		if isNilIdent(arg) {
			if sig != nil && i < sig.Params().Len() && isContextType(sig.Params().At(i).Type()) {
				pass.Reportf(arg.Pos(), "nil context passed downstream: pass this function's ctx instead")
			}
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if isRootCtxCall(info, arg) {
			continue // reported once at the Background()/TODO() site
		}
		if !st.tainted(arg) {
			pass.Reportf(arg.Pos(),
				"context not derived from this function's ctx parameter: the callee is detached from the caller's deadline and cancellation")
		}
	}
}

// checkCtxCompositeLit convicts contexts stored via composite literals:
// S{ctx: ctx} is the same escape as s.ctx = ctx.
func checkCtxCompositeLit(pass *Pass, info *types.Info, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if tv, ok := info.Types[kv.Value]; ok && isContextType(tv.Type) && !isNilIdent(kv.Value) {
			if id, ok := kv.Key.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if v, ok := obj.(*types.Var); ok && v.IsField() {
						pass.Reportf(kv.Pos(),
							"context stored into struct field %q via composite literal: a stored ctx outlives its request", id.Name)
					}
				}
			}
		}
	}
}

// checkCancelBinding reports a cancel bound to the blank identifier and
// records real cancel objects for the later use check.
func checkCancelBinding(pass *Pass, info *types.Info, assign *ast.AssignStmt, call *ast.CallExpr, cancelObjs map[types.Object]bool) {
	if len(assign.Lhs) != 2 {
		return
	}
	id, ok := ast.Unparen(assign.Lhs[1]).(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		pass.Reportf(id.Pos(),
			"cancel from %s assigned to _: the child context's timer and wakeup leak until the parent context ends", withCancelName(info, call))
		return
	}
	if obj := info.Defs[id]; obj != nil {
		cancelObjs[obj] = true
	}
}

// isWithCancelFamily reports whether call is context.WithCancel,
// WithTimeout, WithDeadline, or their *Cause variants — the constructors
// whose second result must not be dropped.
func isWithCancelFamily(info *types.Info, call *ast.CallExpr) bool {
	fn := calleePkgFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	switch fn.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
		return true
	}
	return false
}

func withCancelName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleePkgFunc(info, call); fn != nil {
		return "context." + fn.Name()
	}
	return "context.With*"
}

// isRootCtxCall reports whether e is a direct context.Background()/TODO()
// call (reported separately).
func isRootCtxCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleePkgFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// callSignature resolves the static signature of call's callee, including
// func-typed values, or nil for builtins and conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := types.Unalias(tv.Type).Underlying().(*types.Signature)
	return sig
}

// inScopes reports whether pkg matches any of the scope paths (exact,
// prefix, or package-name match for fixtures).
func inScopes(pkg *types.Package, scopes []string) bool {
	for _, s := range scopes {
		if pkg.Path() == s || pkg.Name() == pathBase(s) {
			return true
		}
	}
	return false
}
