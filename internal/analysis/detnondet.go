package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// detScopes names the packages whose behavior must be a pure function of
// their seeds: the conformance harness (a reported -conform.seed must
// replay its failure bit-for-bit, and Shrink must converge), the schedule
// simulator (golden figure outputs), and the memoized sequential goldens
// the final-output checksums compare against. Fixture packages match by
// package name so the analyzer is testable without the real import paths.
var detScopes = []string{
	"anytime/internal/conform",
	"anytime/internal/sched",
	"anytime/internal/apps/golden",
}

// DetNonDetAnalyzer reports nondeterminism sources inside the
// replay-critical packages: wall-clock reads (time.Now/Since), the global
// math/rand source (unseeded, process-global — schedule derivation must
// flow from the harness's splitmix64 rng), and iteration over a map that
// feeds ordered output (append, channel send, printf-family), whose order
// changes run to run. Everywhere else these are fine and unreported.
var DetNonDetAnalyzer = &Analyzer{
	Name: "detnondet",
	Doc: "report wall-clock, global math/rand, and order-dependent map " +
		"iteration inside the deterministic replay packages (conform, sched, goldens)",
	Run: runDetNonDet,
}

func runDetNonDet(pass *Pass) (interface{}, error) {
	if !inDetScope(pass.Pkg) {
		return nil, nil
	}
	info := pass.TypesInfo
	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleePkgFunc(info, n); fn != nil {
				switch pkgOf(fn) {
				case "time":
					if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
						pass.Reportf(n.Pos(),
							"time.%s in a deterministic-replay package: a reported seed must reproduce its run exactly; derive timing from the schedule instead",
							fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !strings.HasPrefix(fn.Name(), "New") {
						pass.Reportf(n.Pos(),
							"global %s.%s in a deterministic-replay package: every random decision must flow from the schedule's seeded rng",
							pathBase(pkgOf(fn)), fn.Name())
					}
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := types.Unalias(tv.Type.Underlying()).(*types.Map); isMap {
					if pos, what := ordersOutput(info, n.Body); pos != nil {
						pass.Reportf(n.Pos(),
							"map iteration order feeds %s (at line %d) in a deterministic-replay package: sort the keys first",
							what, pass.Fset.Position(pos.Pos()).Line)
					}
				}
			}
		}
		return true
	})
	return nil, nil
}

func inDetScope(pkg *types.Package) bool {
	for _, s := range detScopes {
		if pkg.Path() == s || strings.HasPrefix(pkg.Path(), s+"/") || pkg.Name() == pathBase(s) {
			return true
		}
	}
	return false
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// calleePkgFunc resolves a call to a package-level function (not a method,
// not a builtin), or nil.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	case *ast.Ident:
		obj = info.Uses[f]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Signature().Recv() != nil {
		return nil
	}
	return fn
}

func pkgOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// ordersOutput scans a map-range body for statements whose effect depends
// on iteration order: appending to a slice, sending on a channel, writing
// formatted output. Commutative folds (sums, max, counting into another
// map) pass.
func ordersOutput(info *types.Info, body *ast.BlockStmt) (ast.Node, string) {
	var found ast.Node
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found, what = n, "a channel send"
		case *ast.CallExpr:
			switch f := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if b, ok := info.Uses[f].(*types.Builtin); ok && b.Name() == "append" {
					found, what = n, "an append"
				}
			case *ast.SelectorExpr:
				name := f.Sel.Name
				for _, p := range []string{"Print", "Fprint", "Sprint", "Write", "Log", "Error", "Fatal"} {
					if strings.HasPrefix(name, p) {
						found, what = n, "formatted output ("+name+")"
						break
					}
				}
			}
		}
		return found == nil
	})
	return found, what
}
