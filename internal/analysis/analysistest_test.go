package analysis

// A want-comment fixture engine in the style of
// golang.org/x/tools/go/analysis/analysistest, on the standard library
// alone: each fixture is a self-contained package under testdata/src/<name>
// whose lines carry the diagnostics they must (and, by omission, must not)
// provoke. Fixtures type-check for real — stdlib imports resolve through
// `go list -export` — so the analyzers are tested against the same
// types.Info shapes they see in production.

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads, type-checks, and analyzes testdata/src/<fixture> with
// the single analyzer a, then compares diagnostics against want comments:
//
//	snap.Value.Pix[0] = 1 // want `write into memory aliased`
//
// Each backquoted (or double-quoted) pattern is a regexp that must match
// one diagnostic reported on that line; unmatched diagnostics and
// unmatched wants both fail the test.
func RunFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatalf("fixture %s has no Go files", fixture)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}

	exports, err := fixtureExports(dir, files)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	pkg, err := CheckFiles(fset, fixture, "", files, exports, nil)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", fixture, err)
	}
	diags, err := RunPackage(fset, pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claimWant(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no %s diagnostic matched `%s`", w.pos, a.Name, w.re)
		}
	}
}

// fixtureExports maps the fixture's (transitive) stdlib imports to their
// export data files so CheckFiles can resolve them.
func fixtureExports(dir string, files []*ast.File) (map[string]string, error) {
	imports := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p != "" && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	if len(imports) == 0 {
		return nil, nil
	}
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Export"}, paths...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// want is one expected diagnostic: a line and a message pattern.
type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

// wantPattern tokenizes the patterns of a want comment: backquoted or
// double-quoted Go string literals.
var wantPattern = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				toks := wantPattern.FindAllString(rest, -1)
				if len(toks) == 0 {
					t.Errorf("%s: want comment has no quoted pattern: %s", pos, c.Text)
					continue
				}
				for _, tok := range toks {
					pat, err := strconv.Unquote(tok)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, tok, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %s: %v", pos, tok, err)
						continue
					}
					wants = append(wants, &want{pos: pos, re: re})
				}
			}
		}
	}
	return wants
}

// claimWant marks and returns the first unclaimed want on msg's line whose
// pattern matches.
func claimWant(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.pos.Filename != pos.Filename || w.pos.Line != pos.Line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
