package analysis

// dataflow.go is the suite's SSA-lite dataflow engine: def-use chains over
// the go/types-resolved AST, a package-wide taint fixpoint, and an
// exported-facts store for interprocedural reasoning. The engine is
// deliberately flow-insensitive within a function (an object is tainted if
// any assignment reaching it is tainted) and flow-sensitive only across
// the call graph via per-function summaries: that is cheap enough to run
// on every build and precise enough for the serving-tier contracts the
// analyzers enforce — a budget is a budget on every path, and a context
// derived from the request stays derived no matter the branch taken.
//
// Interprocedural flow uses the same facts idiom as x/tools: analyzing a
// package may export facts about its objects (functions, fields); a later
// package importing those objects consults the store. The standalone
// driver threads one store through the packages in dependency order; the
// unitchecker driver serializes the store into cmd/go's .vetx files.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ---- facts ----

// FactStore holds facts exported about objects, keyed by a stable object
// path (package path + receiver + name), so facts survive serialization
// across unitchecker processes.
type FactStore struct {
	m map[string]map[string]string // objPath -> fact name -> payload
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[string]string)}
}

// ObjectPath renders the stable cross-package key for obj:
// "pkg/path.Name" for package-level objects, "pkg/path.Recv.Name" for
// methods and struct fields. Objects without a package (builtins) key by
// bare name.
func ObjectPath(obj types.Object) string {
	if obj == nil {
		return ""
	}
	var sb strings.Builder
	if p := obj.Pkg(); p != nil {
		sb.WriteString(p.Path())
		sb.WriteByte('.')
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Signature().Recv(); recv != nil {
			if n := namedName(recv.Type()); n != "" {
				sb.WriteString(n)
				sb.WriteByte('.')
			}
		}
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Field objects carry no owner pointer; position-qualify instead so
		// two same-named fields of different structs never collide.
		fmt.Fprintf(&sb, "field%d.", obj.Pos())
	}
	sb.WriteString(obj.Name())
	return sb.String()
}

// Export records a fact about obj. Facts are write-once: re-exporting
// overwrites the payload (analyzers export deterministic payloads, so the
// last write is as good as the first).
func (s *FactStore) Export(obj types.Object, fact, payload string) {
	key := ObjectPath(obj)
	if key == "" {
		return
	}
	f := s.m[key]
	if f == nil {
		f = make(map[string]string)
		s.m[key] = f
	}
	f[fact] = payload
}

// Get looks up a fact about obj.
func (s *FactStore) Get(obj types.Object, fact string) (string, bool) {
	p, ok := s.m[ObjectPath(obj)][fact]
	return p, ok
}

// factFile is the serialized form written into cmd/go's .vetx files.
type factFile struct {
	Facts map[string]map[string]string `json:"facts"`
}

// Encode serializes every fact in the store (the unitchecker writes the
// whole accumulated store; downstream packages deduplicate on merge).
func (s *FactStore) Encode() []byte {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := factFile{Facts: make(map[string]map[string]string, len(keys))}
	for _, k := range keys {
		out.Facts[k] = s.m[k]
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil
	}
	return data
}

// Merge folds serialized facts (an upstream package's vetx) into the
// store. Unparsable data is ignored: an empty vetx file is the protocol's
// "no facts" value.
func (s *FactStore) Merge(data []byte) {
	if len(data) == 0 {
		return
	}
	var in factFile
	if err := json.Unmarshal(data, &in); err != nil {
		return
	}
	for key, facts := range in.Facts {
		f := s.m[key]
		if f == nil {
			f = make(map[string]string, len(facts))
			s.m[key] = f
		}
		for name, payload := range facts {
			f[name] = payload
		}
	}
}

// ---- def-use chains ----

// defUse indexes one package's assignment structure: for every variable or
// struct-field object, the expressions assigned to it (defs) and, for
// tuple assignments from calls, which result index feeds it.
type defUse struct {
	info *types.Info
	// defs maps an object to every single-value expression assigned to it.
	defs map[types.Object][]ast.Expr
	// callDefs maps an object to (call, result index) pairs from
	// multi-value assignments `a, b := f()`.
	callDefs map[types.Object][]callResult
	// uses maps an object to every identifier referencing it.
	uses map[types.Object][]*ast.Ident
}

type callResult struct {
	call  *ast.CallExpr
	index int
}

// buildDefUse walks the files once and records every assignment edge:
// :=/= statements, var specs with values, and range statements (which
// assign element values whose taint is the range operand's).
func buildDefUse(files []*ast.File, info *types.Info) *defUse {
	du := &defUse{
		info:     info,
		defs:     make(map[types.Object][]ast.Expr),
		callDefs: make(map[types.Object][]callResult),
		uses:     make(map[types.Object][]*ast.Ident),
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil {
					du.uses[obj] = append(du.uses[obj], n)
				}
			case *ast.AssignStmt:
				du.recordAssign(n.Lhs, n.Rhs, n.Tok)
			case *ast.ValueSpec:
				if len(n.Values) > 0 {
					lhs := make([]ast.Expr, len(n.Names))
					for i, name := range n.Names {
						lhs[i] = name
					}
					du.recordAssign(lhs, n.Values, token.DEFINE)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					du.record(n.Value, n.X)
				}
			}
			return true
		})
	}
	return du
}

func (du *defUse) recordAssign(lhs, rhs []ast.Expr, tok token.Token) {
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			du.record(lhs[i], rhs[i])
			// Compound assignment (x += e) keeps x's old value in play; the
			// binop conviction logic inspects these separately.
		}
	case len(rhs) == 1:
		// Tuple assignment from a call (or map/chan/type-assert comma-ok;
		// only calls carry cross-object taint).
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			for i := range lhs {
				if obj := du.lhsObject(lhs[i]); obj != nil {
					du.callDefs[obj] = append(du.callDefs[obj], callResult{call, i})
				}
			}
		}
	}
}

func (du *defUse) record(lhs, rhs ast.Expr) {
	if obj := du.lhsObject(lhs); obj != nil {
		du.defs[obj] = append(du.defs[obj], rhs)
	}
}

// lhsObject resolves an assignment target to the object that holds the
// value: the variable for `x = e`, the field object for `s.f = e` (so a
// taint written through any instance of the struct marks the field itself
// — the package-wide approximation that lets a value parsed in one
// function be recognized in another).
func (du *defUse) lhsObject(lhs ast.Expr) types.Object {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := du.info.Defs[x]; obj != nil {
			return obj
		}
		return du.info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := du.info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return du.info.Uses[x.Sel]
	case *ast.StarExpr:
		return du.lhsObject(x.X)
	case *ast.IndexExpr:
		return du.lhsObject(x.X)
	}
	return nil
}

// objectOf resolves a value expression to the object it reads, mirroring
// lhsObject for the use side.
func (du *defUse) objectOf(e ast.Expr) types.Object {
	return du.lhsObject(e)
}

// ---- taint fixpoint ----

// taintConfig parameterizes one taint analysis over a package.
type taintConfig struct {
	// rootCall classifies a call as a taint source, returning the tainted
	// result indices (nil = not a source).
	rootCall func(call *ast.CallExpr) []int
	// rootObject classifies an object (parameter, field) as born tainted.
	rootObject func(obj types.Object) bool
	// passthrough reports the result indices of call that become tainted
	// when the argument at argIdx is tainted (derivation functions such as
	// context.WithTimeout). nil = taint stops at the call.
	passthrough func(call *ast.CallExpr, argIdx int) []int
	// binop reports whether taint survives a binary operation (e.g. budget
	// taint survives '-' but is reported and survives '+').
	binop func(op token.Token) bool
}

// taintState is the result of the package fixpoint: tainted objects plus
// per-function result summaries for the facts layer.
type taintState struct {
	du  *defUse
	cfg taintConfig
	// objs holds the tainted variable/field objects.
	objs map[types.Object]bool
	// funcResults summarizes package functions whose results carry taint:
	// map from function object to the set of tainted result indices.
	funcResults map[*types.Func]map[int]bool
	// facts resolves summaries for out-of-package callees.
	facts    *FactStore
	factName string
}

// runTaint computes the package-wide taint fixpoint. factName, when
// non-empty, names the fact consulted (and exported by exportSummaries)
// for cross-package function-result taint.
func runTaint(files []*ast.File, info *types.Info, cfg taintConfig, facts *FactStore, factName string) *taintState {
	st := &taintState{
		du:          buildDefUse(files, info),
		cfg:         cfg,
		objs:        make(map[types.Object]bool),
		funcResults: make(map[*types.Func]map[int]bool),
		facts:       facts,
		factName:    factName,
	}
	if cfg.rootObject != nil {
		for _, f := range files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := info.Defs[id]; obj != nil && cfg.rootObject(obj) {
					st.objs[obj] = true
				}
				return true
			})
		}
	}
	// Iterate assignments to a fixpoint: the edge set is static, so each
	// round either grows the tainted set or terminates the loop.
	for {
		changed := false
		for obj, rhss := range st.du.defs {
			if st.objs[obj] {
				continue
			}
			for _, rhs := range rhss {
				if st.tainted(rhs) {
					st.objs[obj] = true
					changed = true
					break
				}
			}
		}
		for obj, crs := range st.du.callDefs {
			if st.objs[obj] {
				continue
			}
			for _, cr := range crs {
				if st.callResultTainted(cr.call, cr.index) {
					st.objs[obj] = true
					changed = true
					break
				}
			}
		}
		if !st.summarizeReturns(files, info) && !changed {
			break
		}
	}
	return st
}

// tainted reports whether e evaluates to a tainted value.
func (st *taintState) tainted(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if obj := st.du.objectOf(x); obj != nil {
			if st.objs[obj] {
				return true
			}
			if st.cfg.rootObject != nil && st.cfg.rootObject(obj) {
				return true
			}
		}
		// A selector may also read a field of a tainted struct value; field
		// objects are tracked directly, so nothing further here.
		return false
	case *ast.CallExpr:
		return st.callResultTainted(x, 0)
	case *ast.BinaryExpr:
		if st.cfg.binop != nil && !st.cfg.binop(x.Op) {
			return false
		}
		return st.tainted(x.X) || st.tainted(x.Y)
	case *ast.StarExpr:
		return st.tainted(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return st.tainted(x.X)
		}
		return false
	case *ast.IndexExpr:
		return st.tainted(x.X)
	case *ast.TypeAssertExpr:
		return st.tainted(x.X)
	}
	return false
}

// callResultTainted reports whether result index of call is tainted: the
// call is a configured root, a derivation over a tainted argument, a
// package function summarized as budget-returning, or an imported function
// carrying the fact.
func (st *taintState) callResultTainted(call *ast.CallExpr, index int) bool {
	if st.cfg.rootCall != nil {
		for _, i := range st.cfg.rootCall(call) {
			if i == index {
				return true
			}
		}
	}
	if st.cfg.passthrough != nil {
		for argIdx, arg := range call.Args {
			if !st.tainted(arg) {
				continue
			}
			for _, i := range st.cfg.passthrough(call, argIdx) {
				if i == index {
					return true
				}
			}
		}
	}
	if fn := calleeFunc(st.du.info, call); fn != nil {
		if res, ok := st.funcResults[fn]; ok && res[index] {
			return true
		}
		if st.factName != "" && st.facts != nil {
			if payload, ok := st.facts.Get(fn, st.factName); ok {
				for _, tok := range strings.Split(payload, ",") {
					if tok == fmt.Sprint(index) {
						return true
					}
				}
			}
		}
	}
	return false
}

// summarizeReturns records, for every function declaration, which result
// indices return tainted values, and reports whether a summary changed
// (the fixpoint driver re-runs the assignment pass when it did, since call
// results feed assignments).
func (st *taintState) summarizeReturns(files []*ast.File, info *types.Info) bool {
	changed := false
	for _, f := range files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, _ := info.Defs[decl.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // a literal's returns are its own
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for i, res := range ret.Results {
					if st.tainted(res) && !st.funcResults[fn][i] {
						if st.funcResults[fn] == nil {
							st.funcResults[fn] = make(map[int]bool)
						}
						st.funcResults[fn][i] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	return changed
}

// exportSummaries publishes the taint summaries of exported package
// functions as facts, so downstream packages treat their calls as sources.
func (st *taintState) exportSummaries() {
	if st.facts == nil || st.factName == "" {
		return
	}
	for fn, res := range st.funcResults {
		if !fn.Exported() {
			continue
		}
		indices := make([]string, 0, len(res))
		for i := range res {
			indices = append(indices, fmt.Sprint(i))
		}
		sort.Strings(indices)
		st.facts.Export(fn, st.factName, strings.Join(indices, ","))
	}
}

// ---- shared resolution helpers ----

// calleeFunc resolves a call to the *types.Func it statically invokes
// (package function or method), or nil for builtins, conversions, and
// func-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// calleeIs reports whether call statically invokes a function named name
// in a package whose path or name matches pkg (path suffix match, so
// "serve" matches both the real anytime/internal/serve and a fixture
// package named serve).
func calleeIs(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return pkgMatches(fn.Pkg(), pkg)
}

// pkgMatches reports whether p is the package named by short: exact path,
// path suffix ("/short"), or package name (fixtures).
func pkgMatches(p *types.Package, short string) bool {
	if p == nil {
		return false
	}
	return p.Path() == short || strings.HasSuffix(p.Path(), "/"+short) || p.Name() == short
}

// isTestFile reports whether pos lies in a _test.go file. The serving-tier
// analyzers skip test files: tests legitimately build root contexts, spawn
// unsupervised goroutines, and fabricate budgets.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcDeclFor finds the declaration of fn among files (same package), or
// nil.
func funcDeclFor(files []*ast.File, info *types.Info, fn *types.Func) *ast.FuncDecl {
	for _, f := range files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && info.Defs[decl.Name] == fn {
				return decl
			}
		}
	}
	return nil
}
