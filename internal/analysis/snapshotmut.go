package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotMutAnalyzer enforces the paper's Property 3 (§III-A): a
// published snapshot is immutable. Buffer.Latest/Peek/WaitNewer return the
// Snapshot struct by value, but its Value commonly holds reference types
// (a *pix.Image, a slice of centroids) aliasing the publisher's tile ring
// — writing through them corrupts what concurrent readers and the
// conformance checksums see, silently. The analyzer taints every value
// obtained from a snapshot accessor (and every function parameter of
// Snapshot type: publish observers and AsyncConsume callbacks receive
// aliased snapshots the same way) and reports:
//
//   - writes through a tainted chain that crosses a pointer, slice, or map
//     (snap.Value.Pix[i] = x, copy(snap.Value.Pix, ..), img.SetGray ..);
//   - retaining tainted reference memory in longer-lived state (a field or
//     package variable) without an intervening clone — the tile-ring
//     aliasing window means the backing array is reused a few publishes
//     later (see pix.SnapshotTiles and AccuracyRecorder.CopyOnRecord).
//
// Mutating the local Snapshot struct itself (snap.Version = 0) is
// harmless and not reported; calling a Clone/Copy-named method on the
// chain launders the taint.
var SnapshotMutAnalyzer = &Analyzer{
	Name: "snapshotmut",
	Doc: "report writes into (or retention of) memory aliased by published " +
		"snapshots (anytime automaton Property 3: snapshots are immutable)",
	Run: runSnapshotMut,
}

func runSnapshotMut(pass *Pass) (interface{}, error) {
	info := pass.TypesInfo
	tainted := make(map[types.Object]bool)

	// Pass 1: seed taint. Objects bound from snapshot accessors
	// (snap, ok := buf.Latest(); snap, err := buf.WaitNewer(..)) and
	// parameters of Snapshot-named type.
	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok &&
					isBufferMethod(info, call, "Latest", "Peek", "WaitNewer", "Final") {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if obj := assignedObject(info, id); obj != nil && namedName(obj.Type()) == "Snapshot" {
							tainted[obj] = true
						}
					}
				}
			}
		case *ast.FuncLit:
			taintSnapshotParams(info, n.Type, tainted)
		case *ast.FuncDecl:
			taintSnapshotParams(info, n.Type, tainted)
		}
		return true
	})

	// Pass 2: propagate taint through simple assignments (x := snap.Value,
	// img := snap.Value.Plane(0)) until a fixed point. Clone/Copy-named
	// calls launder.
	for changed := true; changed; {
		changed = false
		walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := assignedObject(info, id)
				if obj == nil || tainted[obj] {
					continue
				}
				// Any chain rooted at a tainted object taints the new
				// binding (snap2 := snap copies the struct but shares its
				// referenced Value; x := snap.Value shares it directly).
				// Over-tainting a scalar is harmless: reports still require
				// a write through reference memory.
				if root, _ := chainRoot(info, as.Rhs[i]); root != nil && tainted[root] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Pass 3: report mutations and retention.
	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if root, refs := chainRoot(info, lhs); root != nil && tainted[root] && refs {
					pass.Reportf(lhs.Pos(),
						"write into memory aliased by snapshot %q: published snapshots are immutable (Property 3); clone before mutating",
						root.Name())
				}
			}
			// Retention: a tainted value that carries references (the
			// snapshot struct itself, its Value pointer, a slice inside it)
			// stored into state that outlives the frame (a field selector
			// or package-level variable).
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				root, _ := chainRoot(info, rhs)
				if root == nil || !tainted[root] || !typeCarriesRefs(typeOf(info, rhs)) {
					continue
				}
				if retentionTarget(info, n.Lhs[i]) {
					pass.Reportf(rhs.Pos(),
						"snapshot %q's referenced memory is retained beyond the publish window (tile-ring aliasing); clone it first (e.g. CopyOnRecord)",
						root.Name())
				}
			}
		case *ast.IncDecStmt:
			if root, refs := chainRoot(info, n.X); root != nil && tainted[root] && refs {
				pass.Reportf(n.Pos(),
					"write into memory aliased by snapshot %q: published snapshots are immutable (Property 3); clone before mutating",
					root.Name())
			}
		case *ast.CallExpr:
			// copy(dst, ..) and append(dst, ..) write dst's backing array.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "copy" || id.Name == "append") {
					if root, refs := chainRoot(info, n.Args[0]); root != nil && tainted[root] && refs {
						pass.Reportf(n.Pos(),
							"%s writes into memory aliased by snapshot %q: published snapshots are immutable (Property 3); clone before mutating",
							id.Name, root.Name())
					}
				}
			}
		}
		return true
	})
	return nil, nil
}

// taintSnapshotParams marks parameters whose type is (or points to) a named
// Snapshot type.
func taintSnapshotParams(info *types.Info, ft *ast.FuncType, tainted map[types.Object]bool) {
	if ft == nil || ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && namedName(obj.Type()) == "Snapshot" {
				tainted[obj] = true
			}
		}
	}
}

// assignedObject resolves the object an identifier binds (Defs for :=,
// Uses for =).
func assignedObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// chainRoot walks a selector/index/deref/call chain to its root identifier,
// reporting whether the chain crosses reference memory (a pointer, slice,
// or map step past the root — the part shared with other snapshot
// holders). A method call along the chain ends it unless the method looks
// like an accessor returning aliased memory; Clone/Copy-named methods
// explicitly launder.
func chainRoot(info *types.Info, e ast.Expr) (types.Object, bool) {
	refs := false
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			// Note the root itself carries no refs bit: `img = ..` rebinds
			// the variable rather than writing through it, even when img is
			// a pointer. Only selector/index/deref steps share memory.
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if v, ok := obj.(*types.Var); ok {
				return v, refs
			}
			return nil, false
		case *ast.SelectorExpr:
			if stepsThroughRef(info, x.X) {
				refs = true
			}
			e = x.X
		case *ast.IndexExpr:
			if stepsThroughRef(info, x.X) {
				refs = true
			}
			e = x.X
		case *ast.StarExpr:
			refs = true
			e = x.X
		case *ast.SliceExpr:
			refs = true
			e = x.X
		case *ast.CallExpr:
			// A call along the chain ends it: Clone/Copy launder by
			// construction, and for anything else we cannot know whether
			// the result aliases the receiver, so stay quiet.
			return nil, false
		default:
			return nil, false
		}
	}
}

// typeCarriesRefs reports whether values of t share memory when copied: t
// is (or is a struct/array containing) a pointer, slice, or map.
func typeCarriesRefs(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeCarriesRefs(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return typeCarriesRefs(u.Elem())
	}
	return false
}

// stepsThroughRef reports whether accessing a member of e dereferences
// shared memory: e's type is a pointer, slice, or map.
func stepsThroughRef(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	switch types.Unalias(tv.Type).(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// retentionTarget reports whether storing into lhs outlives the current
// frame: a field of some object (selector), an index into non-local
// state, or a package-level variable.
func retentionTarget(info *types.Info, lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		// A field write q.snaps = .. (methods can't be assignment targets).
		return true
	case *ast.IndexExpr:
		// s.cache[k] retains; a local scratch slice does not.
		return retentionTarget(info, x.X)
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		// Package-level variables outlive everything.
		return ok && v.Parent() == v.Pkg().Scope()
	}
	return false
}
