package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicFieldAnalyzer is the suite's copylocks analogue for lock-free
// state: it reports by-value copies of types that (transitively) contain
// sync/atomic values — core.Buffer's atomic.Pointer snapshot cell and
// atomic.Uint64 demand watermark, snapshot cells, wakeup channels. Copying
// such a struct forks its atomic state: the copy and the original diverge
// silently, readers of the copy see a frozen buffer, and vet's copylocks
// cannot help because the atomic types carry no mutex. Reported sites:
// by-value parameters, results, and receivers; assignments and variable
// initializers; call arguments; returns; and range clauses that copy
// atomic-bearing elements.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc: "report by-value copies of structs containing sync/atomic values " +
		"(copying forks the atomic state, e.g. core.Buffer's snapshot cell)",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) (interface{}, error) {
	info := pass.TypesInfo
	seen := make(map[types.Type]string)

	// path reports how t reaches an atomic value ("Buffer contains
	// atomic.Pointer[...]"), or "" when it doesn't.
	var path func(t types.Type) string
	path = func(t types.Type) string {
		t = types.Unalias(t)
		if p, ok := seen[t]; ok {
			return p
		}
		seen[t] = "" // cut recursion on cyclic types
		var r string
		switch u := t.(type) {
		case *types.Named:
			if pkg := u.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
				r = u.Obj().Name()
				break
			}
			r = path(u.Underlying())
			if r != "" {
				r = u.Obj().Name() + " contains " + r
			}
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if fr := path(u.Field(i).Type()); fr != "" {
					r = fr
					break
				}
			}
		case *types.Array:
			r = path(u.Elem())
		}
		seen[t] = r
		return r
	}

	report := func(pos ast.Node, what string, t types.Type) {
		if p := path(t); p != "" {
			pass.Reportf(pos.Pos(), "%s copies %s by value: atomic state must be shared by pointer, never forked", what, p)
		}
	}

	// checkFieldList flags by-value atomic-bearing parameter/result types.
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			tv, ok := info.Types[f.Type]
			if !ok {
				continue
			}
			report(f.Type, what, tv.Type)
		}
	}

	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
			checkFieldList(n.Recv, "receiver")
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if copiesValue(info, rhs) {
					report(n.Lhs[i], "assignment", typeOf(info, rhs))
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if copiesValue(info, v) {
					report(v, "variable initialization", typeOf(info, v))
				}
			}
		case *ast.CallExpr:
			if isNewOrBuiltin(info, n) {
				return true
			}
			for _, arg := range n.Args {
				if copiesValue(info, arg) {
					report(arg, "call argument", typeOf(info, arg))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if copiesValue(info, r) {
					report(r, "return", typeOf(info, r))
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				t := typeOf(info, n.Value)
				if t == nil {
					// A := range variable is a definition, not an expression:
					// its type lives in Defs, not Types.
					if id, ok := n.Value.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							t = obj.Type()
						}
					}
				}
				if t != nil {
					report(n.Value, "range clause", t)
				}
			}
		}
		return true
	})
	return nil, nil
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// copiesValue reports whether evaluating e yields a fresh copy of an
// existing value (as opposed to constructing one in place): identifiers,
// field selections, derefs, and indexes copy; composite literals, calls,
// and conversions construct.
func copiesValue(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, isVar := info.Uses[x].(*types.Var)
		return isVar
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// isNewOrBuiltin reports calls that never copy their argument's value
// (new, len, cap, the print builtins) or type conversions.
func isNewOrBuiltin(info *types.Info, call *ast.CallExpr) bool {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[f].(*types.Builtin); ok {
			return true
		}
		if _, ok := info.Uses[f].(*types.TypeName); ok {
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[f.Sel].(*types.TypeName); ok {
			return true
		}
	}
	return false
}
