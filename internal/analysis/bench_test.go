package analysis

import (
	"go/token"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// The suite benchmark answers one question: how much wall clock does the
// anytimevet step add to CI? Loading (go list + parse + typecheck) and
// analyzing are measured separately because they scale differently —
// loading is I/O- and typecheck-bound and grows with tree size, analysis
// is pure AST walking and grows with the number of analyzers. The pinned
// numbers live in BENCH_anytimevet.json next to the CI timing budget.

var (
	benchOnce sync.Once
	benchFset *token.FileSet
	benchPkgs []*Package
	benchErr  error
)

func repoRoot(tb testing.TB) string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		tb.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func loadTree(tb testing.TB) (*token.FileSet, []*Package) {
	benchOnce.Do(func() {
		benchFset = token.NewFileSet()
		benchPkgs, benchErr = Load(benchFset, repoRoot(tb), []string{"./..."}, true)
	})
	if benchErr != nil {
		tb.Fatalf("loading repo tree: %v", benchErr)
	}
	return benchFset, benchPkgs
}

// BenchmarkAnytimevetSuite runs all nine analyzers over the full repo
// tree (tests included), one shared fact store per iteration — exactly
// the work `go run ./cmd/anytimevet ./...` does after loading.
func BenchmarkAnytimevetSuite(b *testing.B) {
	fset, pkgs := loadTree(b)
	analyzers := All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		facts := NewFactStore()
		for _, pkg := range pkgs {
			if _, err := RunPackageFacts(fset, pkg, analyzers, facts); err != nil {
				b.Fatalf("%s: %v", pkg.ID, err)
			}
		}
	}
	b.ReportMetric(float64(len(pkgs)), "packages")
}

// BenchmarkAnytimevetLoad measures the load-and-typecheck phase that
// dominates the CI step's wall clock. Each iteration is a cold load (its
// own FileSet); only go list's output is warm after the first.
func BenchmarkAnytimevetLoad(b *testing.B) {
	root := repoRoot(b)
	for i := 0; i < b.N; i++ {
		fset := token.NewFileSet()
		if _, err := Load(fset, root, []string{"./..."}, true); err != nil {
			b.Fatalf("loading repo tree: %v", err)
		}
	}
}

// BenchmarkAnytimevetPerAnalyzer pins each analyzer's share so a
// regression in one pass is attributable from the job log alone.
func BenchmarkAnytimevetPerAnalyzer(b *testing.B) {
	fset, pkgs := loadTree(b)
	for _, a := range All() {
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				facts := NewFactStore()
				for _, pkg := range pkgs {
					if _, err := RunPackageFacts(fset, pkg, []*Analyzer{a}, facts); err != nil {
						b.Fatalf("%s: %v", pkg.ID, err)
					}
				}
			}
		})
	}
}
