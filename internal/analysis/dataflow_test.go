package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// checkSourceFacts is checkSource with an explicit fact store and package
// path, for exercising the interprocedural facts layer directly.
func checkSourceFacts(t *testing.T, pkgPath, src string, analyzers []*Analyzer, facts *FactStore) (*Package, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing snippet: %v", err)
	}
	pkg, err := CheckFiles(fset, pkgPath, "", []*ast.File{f}, nil, nil)
	if err != nil {
		t.Fatalf("type-checking snippet: %v", err)
	}
	diags, err := RunPackageFacts(fset, pkg, analyzers, facts)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return pkg, diags
}

// TestBudgetFactExported: analyzing a package whose exported function
// returns a ParseBudget result must publish a budgetflow.returns fact for
// it, and the fact must survive the vetx Encode/Merge round trip.
func TestBudgetFactExported(t *testing.T) {
	t.Parallel()
	facts := NewFactStore()
	pkg, diags := checkSourceFacts(t, "serve", `package serve

func ParseBudget(h string) (int64, bool, error) { return 0, false, nil }

// Wrap re-exports a raw budget: downstream packages must see its result
// as tainted.
func Wrap(h string) int64 {
	b, _, _ := ParseBudget(h)
	return b
}
`, []*Analyzer{BudgetFlowAnalyzer}, facts)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	wrap := pkg.Types.Scope().Lookup("Wrap")
	if wrap == nil {
		t.Fatal("Wrap not in package scope")
	}
	payload, ok := facts.Get(wrap, "budgetflow.returns")
	if !ok || payload != "0" {
		t.Fatalf("budgetflow.returns fact for Wrap = %q, %v; want \"0\", true", payload, ok)
	}

	// The unitchecker serializes the store into a .vetx file and downstream
	// processes merge it back; the fact must survive the round trip.
	merged := NewFactStore()
	merged.Merge(facts.Encode())
	if payload, ok := merged.Get(wrap, "budgetflow.returns"); !ok || payload != "0" {
		t.Fatalf("fact lost in Encode/Merge round trip: %q, %v", payload, ok)
	}
}

// TestBudgetFactConsumed: a call to a body-less function carrying a
// budgetflow.returns fact (the shape of an imported function in
// unitchecker mode) must taint its result, so widening it convicts.
func TestBudgetFactConsumed(t *testing.T) {
	t.Parallel()
	src := `package serve

// External stands in for a function imported from another package: no
// body here, only the fact seeded below.
func External() int64

func widen() int64 {
	b := External()
	return b + 1
}
`
	// First pass, no fact: the analyzer has no reason to convict.
	if _, diags := checkSourceFacts(t, "serve", src, []*Analyzer{BudgetFlowAnalyzer}, NewFactStore()); len(diags) != 0 {
		t.Fatalf("without the fact, got diagnostics: %v", diags)
	}

	// Second pass: seed the fact the upstream package would have exported.
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CheckFiles(fset, "serve", "", []*ast.File{f}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	facts := NewFactStore()
	facts.Export(pkg.Types.Scope().Lookup("External"), "budgetflow.returns", "0")
	diags, err := RunPackageFacts(fset, pkg, []*Analyzer{BudgetFlowAnalyzer}, facts)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "budget widened") {
		t.Fatalf("with the fact, got %v; want one budget-widened diagnostic", diags)
	}
}

// TestSuppressionCollection: CollectSuppressions inventories every ignore
// directive, bare ones flagged.
func TestSuppressionCollection(t *testing.T) {
	t.Parallel()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", `package p

func a() {
	//lint:ignore budgetflow deliberate race-timer slack
	_ = 1 + 1
	//lint:ignore goroleak
	_ = 2 + 2
}
`, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	sups := CollectSuppressions(fset, []*ast.File{f})
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2: %v", len(sups), sups)
	}
	if sups[0].Analyzer != "budgetflow" || sups[0].Bare() {
		t.Errorf("first suppression misread: %+v", sups[0])
	}
	if sups[1].Analyzer != "goroleak" || !sups[1].Bare() {
		t.Errorf("bare suppression not flagged: %+v", sups[1])
	}
}
