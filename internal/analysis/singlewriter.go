package analysis

import (
	"go/ast"
	"go/types"
)

// SingleWriterAnalyzer enforces the paper's Property 2 (§III-A): each
// output buffer has exactly one writing stage. The wait-free Buffer makes a
// second writer silent rather than crashy — concurrent Publish calls race
// the version counter and the snapshot arena without tripping anything the
// race detector can't see in a lucky schedule — so the analyzer convicts
// the spawn structure itself:
//
//   - the same buffer published both from a spawned goroutine and from its
//     owning goroutine (or from two distinct go statements);
//   - Publish inside a goroutine spawned in a loop over a captured buffer
//     (the N-workers-one-writer fan-out, where every iteration spawns
//     another writer).
//
// Workers that compute into private state while a coordinator publishes —
// core's DiffusiveWorkers shape — pass: only the publish sites' goroutine
// contexts matter.
var SingleWriterAnalyzer = &Analyzer{
	Name: "singlewriter",
	Doc: "report output buffers published from more than one goroutine " +
		"(anytime automaton Property 2: single writer per buffer)",
	Run: runSingleWriter,
}

// publishSite is one Publish/PublishFinal call with its goroutine context.
type publishSite struct {
	call *ast.CallExpr
	// spawn is the go statement whose function literal (transitively)
	// encloses the call, or nil when the call runs on the spawning
	// function's own goroutine.
	spawn *ast.GoStmt
	// looped reports whether spawn itself sits inside a for/range loop, so
	// each iteration starts another writer.
	looped bool
	// captured reports whether the buffer is a free variable of the spawned
	// function (not declared inside it), i.e. iterations share one buffer.
	captured bool
}

func runSingleWriter(pass *Pass) (interface{}, error) {
	// Group publish sites per buffer object within each top-level function:
	// goroutine structure is a per-function property, and field objects
	// shared across functions would otherwise conflate one stage's
	// publish-loop with another function's.
	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		decl, ok := n.(*ast.FuncDecl)
		if !ok || decl.Body == nil {
			return true
		}
		sites := make(map[types.Object][]publishSite)
		walkStack([]*ast.File{wrapDecl(decl)}, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBufferMethod(pass.TypesInfo, call, "Publish", "PublishFinal") {
				return true
			}
			obj := receiverObject(pass.TypesInfo, call)
			if obj == nil {
				return true
			}
			site := classifySpawn(call, stack, obj, pass.TypesInfo)
			sites[obj] = append(sites[obj], site)
			return true
		})
		reportSingleWriter(pass, sites)
		return true
	})
	return nil, nil
}

// wrapDecl packages a single declaration as a file so walkStack can
// traverse it with a stack rooted at the declaration.
func wrapDecl(decl *ast.FuncDecl) *ast.File {
	return &ast.File{Name: ast.NewIdent("_"), Decls: []ast.Decl{decl}}
}

// classifySpawn determines the goroutine context of a publish call from its
// ancestor stack: the innermost go statement reached by crossing at least
// one function literal (a call in a go statement's argument list runs
// synchronously in the spawner and does not count).
func classifySpawn(call *ast.CallExpr, stack []ast.Node, obj types.Object, info *types.Info) publishSite {
	site := publishSite{call: call}
	crossedFuncLit := false
	var innerFn *ast.FuncLit
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			crossedFuncLit = true
			if innerFn == nil {
				innerFn = n
			}
		case *ast.GoStmt:
			if !crossedFuncLit {
				continue
			}
			site.spawn = n
			for j := i - 1; j >= 0; j-- {
				switch stack[j].(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					site.looped = true
				case *ast.FuncDecl, *ast.FuncLit:
					j = -1 // loops outside the enclosing function don't spawn this go statement repeatedly
				}
			}
			site.captured = obj.Pos() < n.Pos() || obj.Pos() > n.End()
			return site
		case *ast.FuncDecl:
			return site
		}
	}
	return site
}

func reportSingleWriter(pass *Pass, sites map[types.Object][]publishSite) {
	for obj, list := range sites {
		// Distinct goroutine contexts: nil (owner) plus each go statement.
		spawns := make(map[*ast.GoStmt]bool)
		owner := false
		for _, s := range list {
			if s.spawn == nil {
				owner = true
			} else {
				spawns[s.spawn] = true
			}
		}
		multi := len(spawns) >= 2 || (len(spawns) >= 1 && owner)
		for _, s := range list {
			switch {
			case s.spawn != nil && multi:
				pass.Reportf(s.call.Pos(),
					"buffer %q is published from multiple goroutines (single-writer Property 2): this go statement races the other publish sites in %s",
					obj.Name(), funcName(pass, s.call))
			case s.spawn != nil && s.looped && s.captured:
				pass.Reportf(s.call.Pos(),
					"buffer %q is published from a goroutine spawned in a loop: every iteration starts another writer (single-writer Property 2)",
					obj.Name())
			}
		}
	}
}

// funcName names the function declaration enclosing pos, for messages.
func funcName(pass *Pass, n ast.Node) string {
	for _, f := range pass.Files {
		if n.Pos() < f.Pos() || n.Pos() > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= n.Pos() && n.Pos() <= fd.End() {
				return fd.Name.Name
			}
		}
	}
	return "this function"
}
