package analysis

// format.go renders a run's diagnostics as machine-readable documents: a
// JSON array for scripting and SARIF 2.1.0 for code-scanning UIs (GitHub
// uploads a SARIF artifact and annotates the PR inline). Both formats are
// whole-document — the driver collects every diagnostic first — because
// SARIF has no streaming form and CI consumes the file atomically.

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"strings"
)

// JSONDiagnostic is one finding in -format=json output.
type JSONDiagnostic struct {
	Posn     string `json:"posn"` // file:line:col
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// FormatJSON renders diagnostics as an indented JSON array (empty slice,
// not null, when clean — consumers index without a nil check).
func FormatJSON(fset *token.FileSet, diags []Diagnostic) []byte {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			Posn:     fset.Position(d.Pos).String(),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return []byte("[]")
	}
	return append(data, '\n')
}

// sarif* mirror the minimal subset of the SARIF 2.1.0 schema that GitHub
// code scanning consumes: one run, one driver, rules keyed by analyzer
// name, results with a physical location each.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// FormatSARIF renders diagnostics as a SARIF 2.1.0 log. Every analyzer in
// the run is listed as a rule (so a clean run still documents what was
// checked); file paths are made repo-relative against root when possible,
// which is what GitHub's upload action expects.
func FormatSARIF(fset *token.FileSet, analyzers []*Analyzer, diags []Diagnostic, root string) []byte {
	driver := sarifDriver{
		Name:           "anytimevet",
		InformationURI: "https://example.invalid/anytime/cmd/anytimevet",
	}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		uri := pos.Filename
		if root != "" {
			if rel, ok := strings.CutPrefix(uri, strings.TrimSuffix(root, "/")+"/"); ok {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil
	}
	return append(data, '\n')
}

// Suppression is one //lint:ignore directive found in a tree: where, which
// analyzer it silences, and the justification (empty = bare, a finding in
// itself). The CI suppression-audit step prints every suppression and
// fails on bare ones, so the ignore inventory stays reviewed.
type Suppression struct {
	Posn          string `json:"posn"`
	Analyzer      string `json:"analyzer"`
	Justification string `json:"justification"`
}

// Bare reports whether the suppression lacks a justification.
func (s Suppression) Bare() bool { return strings.TrimSpace(s.Justification) == "" }

// CollectSuppressions scans the files' comments for every lint:ignore
// directive, in source order.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) []Suppression {
	var out []Suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, strings.TrimSuffix(ignorePrefix, " "))
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				out = append(out, Suppression{
					Posn:          fset.Position(c.Pos()).String(),
					Analyzer:      name,
					Justification: strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}
