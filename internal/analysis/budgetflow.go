package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// budgetScopes names the packages that participate in the fleet's
// deadline-budget protocol (PR 8): the router computes cluster.Remaining,
// the backend parses serve.BudgetHeader and folds it in with
// serve.ApplyBudget. The invariant the analyzer makes compile-time is the
// one DESIGN.md states in prose: a budget may only shrink as it moves
// through the fleet.
var budgetScopes = []string{
	"anytime/internal/serve",
	"anytime/internal/cluster",
	"anytime/internal/daemon",
}

// budgetReturnsFact marks exported functions whose results carry a budget
// value, so a downstream package's taint picks up where this one stopped.
const budgetReturnsFact = "budgetflow.returns"

// BudgetFlowAnalyzer taint-tracks deadline budgets from their two sources —
// cluster.Remaining (router side) and serve.ParseBudget (backend side) —
// and convicts every flow that could hand a request more time than the
// client granted:
//
//   - widening arithmetic on a budget (+, *, << or the max builtin): a
//     budget is a ceiling; only subtraction, division, and min may touch
//     it. Deliberate slack (the hedge race timer) gets a justified
//     //lint:ignore;
//   - a raw budget used as a deadline (serve.Run's deadline argument or
//     Controller.Scale's) without laundering through serve.ApplyBudget,
//     which alone knows the precise-request and floor rules;
//   - a statically non-positive deadline fed to ApplyBudget/Remaining:
//     precise requests never participate in the budget protocol, so a
//     constant deadline <= 0 at these call sites is dead plumbing that
//     contradicts the contract;
//   - echoing serve.BudgetHeader on a response without a guard on
//     ApplyBudget's budgeted result: the header is echoed only when the
//     budget actually tightened the deadline (a budget looser than the
//     deadline never participated). Setting the header on an *outbound*
//     request (router → backend) is the protocol itself and stays legal.
var BudgetFlowAnalyzer = &Analyzer{
	Name: "budgetflow",
	Doc: "taint-track deadline budgets: no widening arithmetic, no raw " +
		"budget as a deadline, no budgeting precise requests, and response " +
		"echo of X-Anytime-Budget only behind ApplyBudget's budgeted guard",
	Run: runBudgetFlow,
}

func runBudgetFlow(pass *Pass) (interface{}, error) {
	if !inScopes(pass.Pkg, budgetScopes) {
		return nil, nil
	}
	info := pass.TypesInfo
	facts := passFacts(pass)

	isSource := func(call *ast.CallExpr) []int {
		if calleeIs(info, call, "serve", "ParseBudget") || calleeIs(info, call, "cluster", "Remaining") {
			return []int{0}
		}
		return nil
	}

	// Taint survives every arithmetic op — a widened budget is still a
	// budget (and must still not be widened again); the widening itself is
	// convicted separately below. Comparisons yield bools, which the tainted
	// walk never consults.
	st := runTaint(pass.Files, info, taintConfig{
		rootCall: isSource,
		binop:    func(op token.Token) bool { return true },
	}, facts, budgetReturnsFact)
	st.exportSummaries()

	// budgetedObjs: objects bound to ApplyBudget's second result — the only
	// guard under which a response may echo the budget header.
	budgetedObjs := make(map[types.Object]bool)
	for obj, crs := range st.du.callDefs {
		for _, cr := range crs {
			if cr.index == 1 && calleeIs(info, cr.call, "serve", "ApplyBudget") {
				budgetedObjs[obj] = true
			}
		}
	}

	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		if f, ok := n.(*ast.File); ok {
			return !isTestFile(pass.Fset, f.Pos())
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkWidening(pass, st, n)
		case *ast.AssignStmt:
			checkCompoundWidening(pass, st, n)
		case *ast.CallExpr:
			checkBudgetCall(pass, st, n, budgetedObjs, stack)
		}
		return true
	})
	return nil, nil
}

// wideningOps are the binary operators that can increase a budget.
var wideningOps = map[token.Token]bool{
	token.ADD: true, // +
	token.MUL: true, // *
	token.SHL: true, // <<
}

func checkWidening(pass *Pass, st *taintState, be *ast.BinaryExpr) {
	if !wideningOps[be.Op] {
		return
	}
	if st.tainted(be.X) || st.tainted(be.Y) {
		pass.Reportf(be.OpPos,
			"budget widened with %q: a deadline budget is a ceiling and may only shrink on its way through the fleet (subtract, divide, or min)", be.Op)
	}
}

// checkCompoundWidening convicts `budget += slack` and friends: compound
// assignments whose operator widens and whose target holds a budget.
func checkCompoundWidening(pass *Pass, st *taintState, assign *ast.AssignStmt) {
	var op token.Token
	switch assign.Tok {
	case token.ADD_ASSIGN:
		op = token.ADD
	case token.MUL_ASSIGN:
		op = token.MUL
	case token.SHL_ASSIGN:
		op = token.SHL
	default:
		return
	}
	for _, lhs := range assign.Lhs {
		if obj := st.du.objectOf(lhs); obj != nil && st.objs[obj] {
			pass.Reportf(assign.TokPos,
				"budget widened with %q=: a deadline budget is a ceiling and may only shrink on its way through the fleet", op)
			return
		}
	}
}

// checkBudgetCall applies the call-site rules: max over a budget, raw
// budget as deadline, constant precise deadline fed to the protocol, and
// the response-echo guard.
func checkBudgetCall(pass *Pass, st *taintState, call *ast.CallExpr, budgetedObjs map[types.Object]bool, stack []ast.Node) {
	info := pass.TypesInfo

	// max(budget, ...) is widening by another name.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "max" {
			for _, arg := range call.Args {
				if st.tainted(arg) {
					pass.Reportf(call.Pos(),
						"budget passed through max(): a deadline budget is a ceiling and may only shrink (use min to combine budgets)")
					break
				}
			}
		}
	}

	// Raw budget as a deadline: serve.Run's deadline is argument 2,
	// Controller.Scale's is argument 1. ApplyBudget's first result (the
	// effective deadline) is deliberately not tainted — laundering through
	// it is the only legal path from budget to deadline.
	deadlineArg := -1
	switch {
	case calleeIs(info, call, "serve", "Run"):
		deadlineArg = 2
	case isScaleMethod(info, call):
		deadlineArg = 1
	}
	if deadlineArg >= 0 && deadlineArg < len(call.Args) && st.tainted(call.Args[deadlineArg]) {
		pass.Reportf(call.Args[deadlineArg].Pos(),
			"raw budget used as a deadline: fold it in with serve.ApplyBudget, which alone enforces the precise-request and zero-budget floor rules")
	}

	// Precise requests never consult the budget protocol: a constant
	// deadline <= 0 at ApplyBudget/Remaining is plumbing that contradicts
	// the contract the callee will silently no-op on.
	if calleeIs(info, call, "serve", "ApplyBudget") || calleeIs(info, call, "cluster", "Remaining") {
		if len(call.Args) > 0 && isNonPositiveConst(info, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(),
				"budget protocol invoked with a non-positive deadline: precise requests are never budgeted (bound them with admission control)")
		}
	}

	// Response echo: Header().Set(BudgetHeader, ...) on a ResponseWriter
	// must sit under an if on ApplyBudget's budgeted result.
	if isBudgetHeaderSet(info, call) && isResponseHeaderSet(info, call) {
		if !guardedByBudgeted(info, stack, budgetedObjs) {
			pass.Reportf(call.Pos(),
				"%s echoed unconditionally: echo only when ApplyBudget reported budgeted=true (a budget looser than the deadline never participated)", "X-Anytime-Budget")
		}
	}
}

// isScaleMethod reports whether call invokes a Scale method on a named
// Controller type (the serve.Controller shape; name-based so fixtures
// stay self-contained).
func isScaleMethod(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeMethod(info, call)
	if fn == nil || fn.Name() != "Scale" {
		return false
	}
	recv := fn.Signature().Recv()
	return recv != nil && namedName(recv.Type()) == "Controller"
}

func isNonPositiveConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v <= 0
}

// isBudgetHeaderSet reports whether call is a Header.Set/Add whose key is
// the budget header (by the serve.BudgetHeader constant or its literal).
func isBudgetHeaderSet(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeMethod(info, call)
	if fn == nil || (fn.Name() != "Set" && fn.Name() != "Add") || len(call.Args) < 1 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return constant.StringVal(tv.Value) == "X-Anytime-Budget"
}

// isResponseHeaderSet distinguishes the echo (w.Header().Set on a
// ResponseWriter) from the downstream send (req.Header.Set on a request):
// only the former is the guarded echo.
func isResponseHeaderSet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	hdrCall, ok := ast.Unparen(sel.X).(*ast.CallExpr)
	if !ok {
		return false // req.Header is a field, not a Header() call
	}
	hfn := calleeMethod(info, hdrCall)
	if hfn == nil || hfn.Name() != "Header" {
		return false
	}
	recv := hfn.Signature().Recv()
	if recv == nil {
		return false
	}
	return strings.Contains(recv.Type().String(), "ResponseWriter")
}

// guardedByBudgeted reports whether some enclosing if statement's condition
// reads an object bound to ApplyBudget's budgeted result.
func guardedByBudgeted(info *types.Info, stack []ast.Node, budgetedObjs map[types.Object]bool) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && budgetedObjs[info.Uses[id]] {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
