package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked analysis target.
type Package struct {
	// ID is the go list ImportPath, unique across the load (test variants
	// carry a " [pkg.test]" suffix).
	ID string
	// PkgPath is the source import path (ForTest for test variants).
	PkgPath string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	ForTest    string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given extra arguments and decodes
// the JSON stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths to type information: module-local
// packages come from the source-checked packages the loader has already
// built (so test variants and their importers agree on type identity), and
// everything else (the standard library) is read from the build cache's
// export data as listed by `go list -export`.
type exportImporter struct {
	fset *token.FileSet
	// exports maps a package ID to its export data file.
	exports map[string]string
	// checked maps a package ID to its source-checked package.
	checked map[string]*types.Package
	// importMap, when non-nil, rewrites source import paths (vendor and
	// test-variant renaming) for the package currently being checked.
	importMap map[string]string
	gc        types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{
		fset:    fset,
		exports: exports,
		checked: make(map[string]*types.Package),
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := imp.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return imp
}

func (imp *exportImporter) Import(path string) (*types.Package, error) {
	return imp.ImportFrom(path, "", 0)
}

func (imp *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := imp.importMap[path]; ok {
		path = mapped
	}
	if pkg, ok := imp.checked[path]; ok {
		return pkg, nil
	}
	return imp.gc.ImportFrom(path, dir, 0)
}

// newInfo returns a types.Info with every map the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// parseFiles parses the named files (relative names resolved against dir)
// with comments retained.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load lists, parses, and type-checks the packages matching patterns under
// dir, returning the analysis targets in dependency order. When tests is
// set, in-package test files are analyzed (as their merged test variant)
// along with external _test packages; the synthesized test-main packages
// are always skipped. Standard-library dependencies are read from export
// data, so the only toolchain requirement is a working `go list -export`.
func Load(fset *token.FileSet, dir string, patterns []string, tests bool) ([]*Package, error) {
	// The target set: what the patterns name, before dependency expansion.
	targets, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(targets))
	for _, t := range targets {
		want[t.ImportPath] = true
	}

	// The universe: targets plus every dependency, with export data
	// compiled for the gc importer, plus test variants when requested.
	args := []string{"-export", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, "-json=ImportPath,Dir,Standard,ForTest,Export,GoFiles,CgoFiles,Imports,ImportMap,Module,Error")
	universe, err := goList(dir, append(args, patterns...)...)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	byID := make(map[string]*listPkg, len(universe))
	var module []*listPkg // source-checked packages, in go list (dependency) order
	for _, p := range universe {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		byID[p.ImportPath] = p
		if strings.HasSuffix(p.ImportPath, ".test") && p.ForTest == "" {
			continue // synthesized test main: generated sources, nothing to prove
		}
		if p.Module != nil && !p.Standard {
			if len(p.CgoFiles) > 0 {
				return nil, fmt.Errorf("package %s: cgo packages are not supported", p.ImportPath)
			}
			module = append(module, p)
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, p := range module {
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		// "p [p.test]" → "p", "p_test [p.test]" → "p_test".
		pkgPath := p.ImportPath
		if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
			pkgPath = pkgPath[:i]
		}
		info := newInfo()
		imp.importMap = p.ImportMap
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkgPath, fset, files, info)
		imp.importMap = nil
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		imp.checked[p.ImportPath] = tpkg

		// Analyze the package if the patterns asked for it: the base path
		// matched directly, or this is its test variant / external test
		// package. When the test variant of a base package is present it
		// supersedes the base as the analysis target (same files plus the
		// in-package tests); the base is still type-checked above because
		// other packages import it.
		analyzed := want[p.ImportPath] || (p.ForTest != "" && want[p.ForTest])
		if tests && want[p.ImportPath] && hasTestVariant(universe, p.ImportPath) {
			analyzed = false
		}
		if analyzed {
			out = append(out, &Package{
				ID:      p.ImportPath,
				PkgPath: pkgPath,
				Files:   files,
				Types:   tpkg,
				Info:    info,
			})
		}
	}
	return out, nil
}

// hasTestVariant reports whether the universe contains the merged test
// variant of base (ImportPath "base [base.test]").
func hasTestVariant(universe []*listPkg, base string) bool {
	id := base + " [" + base + ".test]"
	for _, p := range universe {
		if p.ImportPath == id {
			return true
		}
	}
	return false
}

// CheckFiles type-checks one package from parsed sources against export
// data for its dependencies — the vet-tool (unitchecker) entry point,
// where cmd/go supplies the export file map and import renaming. goVersion
// may be empty.
func CheckFiles(fset *token.FileSet, pkgPath, goVersion string, files []*ast.File, exports, importMap map[string]string) (*Package, error) {
	imp := newExportImporter(fset, exports)
	imp.importMap = importMap
	info := newInfo()
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{ID: pkgPath, PkgPath: pkgPath, Files: files, Types: tpkg, Info: info}, nil
}

// ParseFiles parses the named Go files (resolved against dir when
// relative) with comments, for CheckFiles.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	return parseFiles(fset, dir, names)
}
