// Package analysis is anytimevet's static-analysis suite: a set of
// go/analysis-style analyzers that prove the automaton discipline of the
// paper's §III invariants at compile time, on every build, with zero
// schedules run. Where the conformance harness (internal/conform) catches a
// violation only when a seeded schedule happens to trip it, these analyzers
// convict the misuse pattern itself — a second goroutine publishing to a
// single-writer buffer, a reader mutating a published snapshot, a by-value
// copy of an atomic-bearing struct — before the code ever runs.
//
// The framework mirrors the API shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the suite can be rebased onto the real
// module mechanically if the dependency is ever vendored; this repo builds
// with a zero-dependency go.mod, so the driver (package loading, want-file
// testing, the vet-tool protocol) is implemented here on the standard
// library alone.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name usable in -<name>=false
// driver flags and //lint:ignore directives, documentation, and the
// function that runs the check over a single package.
type Analyzer struct {
	// Name is the analyzer's unique short name ([a-z]+).
	Name string
	// Doc is the one-paragraph description printed by `anytimevet help`.
	Doc string
	// Run inspects the package in pass and reports diagnostics through
	// pass.Report. The interface{} result mirrors x/tools (facts plumbing);
	// the suite's analyzers all return (nil, nil).
	Run func(pass *Pass) (interface{}, error)
}

// Pass is the unit of work handed to an Analyzer: one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver installs it; analyzers
	// normally use Reportf.
	Report func(Diagnostic)
	// Facts carries interprocedural facts across packages: the driver
	// threads one store through the packages in dependency order (or decodes
	// it from cmd/go's .vetx files in unitchecker mode). Analyzers read
	// facts about imported objects and export facts about their own.
	Facts *FactStore
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. Analyzer is filled
// in by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// All returns the suite, in stable order. Each analyzer encodes one
// contract of the automaton model; see their Doc strings and DESIGN.md §7.
func All() []*Analyzer {
	return []*Analyzer{
		SingleWriterAnalyzer,
		SnapshotMutAnalyzer,
		AtomicFieldAnalyzer,
		DetNonDetAnalyzer,
		HookNilAnalyzer,
		CtxFlowAnalyzer,
		GoroLeakAnalyzer,
		BudgetFlowAnalyzer,
		HotAllocAnalyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ---- shared AST / types helpers ----

// walkStack traverses every file of the pass in source order, invoking fn
// with each node and the stack of its ancestors (outermost first, not
// including n itself). Returning false from fn prunes the subtree.
func walkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// deref unwraps one level of pointer and any alias chains.
func deref(t types.Type) types.Type {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	return t
}

// namedName reports the declared name of t's (possibly pointer-wrapped,
// possibly instantiated-generic) named type, or "".
func namedName(t types.Type) string {
	if t == nil {
		return ""
	}
	n, ok := deref(t).(*types.Named)
	if !ok {
		return ""
	}
	return n.Obj().Name()
}

// calleeMethod resolves call to the *types.Func it invokes through a
// selector (method value calls included), or nil.
func calleeMethod(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

// isBufferMethod reports whether call invokes a method with one of the
// given names on a named type called "Buffer" (the core.Buffer shape; the
// name-based match keeps analyzer fixtures self-contained while convicting
// the real type everywhere it is aliased or re-exported).
func isBufferMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := calleeMethod(info, call)
	if fn == nil {
		return false
	}
	recv := fn.Signature().Recv()
	if recv == nil || namedName(recv.Type()) != "Buffer" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// receiverObject resolves the object that identifies the receiver of a
// method call for grouping purposes: the variable for `b.Publish(..)`, the
// field for `s.out.Publish(..)`. Returns nil when the receiver is not a
// plain identifier/selector chain (e.g. a call result).
func receiverObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	expr := ast.Unparen(sel.X)
	for {
		switch x := expr.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			if obj := info.Uses[x.Sel]; obj != nil {
				return obj
			}
			return nil
		case *ast.ParenExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		default:
			return nil
		}
	}
}

// exprString renders a guard expression for structural comparison
// (whitespace-free, parens stripped). It intentionally covers only the
// shapes that appear in nil-guard conditions: identifiers, selector
// chains, derefs, and indexes with literal/ident keys.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprString(a)
		}
		return exprString(x.Fun) + "(" + strings.Join(args, ",") + ")"
	default:
		return fmt.Sprintf("%T@%d", e, e.Pos())
	}
}

// sortDiagnostics orders diagnostics by file position for stable output.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Message < ds[j].Message
	})
}
