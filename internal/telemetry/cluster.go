package telemetry

import (
	"time"

	"anytime/internal/cluster"
)

// Metric names of the router-tier binding.
const (
	MetricRouterForwards      = "anytime_router_forwards_total"
	MetricRouterForwardRTT    = "anytime_router_forward_rtt_seconds"
	MetricRouterHedges        = "anytime_router_hedges_total"
	MetricRouterHedgeWins     = "anytime_router_hedge_wins_total"
	MetricRouterHedgeCancels  = "anytime_router_hedge_cancels_total"
	MetricRouterBudgetFloored = "anytime_router_budget_floored_total"
	MetricRouterMemberStates  = "anytime_router_member_state_changes_total"
	MetricRouterDeliveries    = "anytime_router_deliveries_total"
	MetricRouterDeliveryTime  = "anytime_router_delivery_seconds"
)

// RouterHooks returns a cluster.Hooks recording the routing tier into reg:
//
//   - anytime_router_forwards_total{member,role,usable}: proxied requests
//     by backend, attempt role (primary | hedge), and whether the response
//     carried a deliverable snapshot. Counted at completion, so the usable
//     label is known.
//   - anytime_router_forward_rtt_seconds{member}: per-backend round-trip
//     histogram — the network term of the budget arithmetic, observable.
//   - anytime_router_hedges_total: hedge timers that fired (a secondary
//     request was issued). The ratio to deliveries is the hedge rate; it
//     should track 1 - HedgeQuantile (~1% at p99).
//   - anytime_router_hedge_wins_total{role}: resolved races by winning
//     role. A high hedge share means the hedge delay is too long or a
//     backend is sick.
//   - anytime_router_hedge_cancels_total{member}: in-flight losers
//     cancelled, by backend — who keeps losing races.
//   - anytime_router_budget_floored_total: requests whose remaining budget
//     clamped to zero (the fleet spent the whole deadline before any
//     backend could run) — sustained growth means deadlines are too tight
//     for the topology.
//   - anytime_router_member_state_changes_total{member,state}: health
//     transitions (healthy | draining | down).
//   - anytime_router_deliveries_total{member,hedged}: responses written,
//     by serving backend and whether the request hedged.
//   - anytime_router_delivery_seconds{hedged}: router-side end-to-end
//     latency (arrival to response written).
//
// All instruments are safe for concurrent use; one Hooks value serves the
// whole router.
func RouterHooks(reg *Registry) *cluster.Hooks {
	hedges := reg.Counter(MetricRouterHedges, nil)
	floored := reg.Counter(MetricRouterBudgetFloored, nil)
	return &cluster.Hooks{
		ForwardDone: func(member, role string, rtt time.Duration, usable bool) {
			ok := "false"
			if usable {
				ok = "true"
			}
			reg.Counter(MetricRouterForwards, Labels{"member": member, "role": role, "usable": ok}).Inc()
			if usable {
				reg.DurationHistogram(MetricRouterForwardRTT, Labels{"member": member}).ObserveDuration(rtt)
			}
		},
		Hedge: func(delay time.Duration) {
			hedges.Inc()
		},
		HedgeWin: func(role string) {
			reg.Counter(MetricRouterHedgeWins, Labels{"role": role}).Inc()
		},
		HedgeCancel: func(member string) {
			reg.Counter(MetricRouterHedgeCancels, Labels{"member": member}).Inc()
		},
		BudgetFloored: func() {
			floored.Inc()
		},
		MemberState: func(member, state string) {
			reg.Counter(MetricRouterMemberStates, Labels{"member": member, "state": state}).Inc()
		},
		Deliver: func(member string, hedged bool, elapsed time.Duration) {
			hl := "false"
			if hedged {
				hl = "true"
			}
			reg.Counter(MetricRouterDeliveries, Labels{"member": member, "hedged": hl}).Inc()
			reg.DurationHistogram(MetricRouterDeliveryTime, Labels{"hedged": hl}).ObserveDuration(elapsed)
		},
	}
}
