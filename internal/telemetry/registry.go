// Package telemetry is the runtime observability layer of the anytime
// automaton: a lock-cheap metrics registry (counters, gauges, atomic
// histograms with fixed log-scale buckets) plus typed bindings that watch a
// running pipeline through core's Hooks and buffer observers. The paper's
// evaluation measures everything after the fact; a served automaton
// (cmd/anytimed) needs the same quantities — per-stage checkpoint latency,
// per-buffer publish rates and version watermarks, accuracy-versus-time —
// live, from every stage goroutine at once, without perturbing the pipeline
// being measured.
//
// Design: instrument handles are resolved once (a mutex-guarded map) and
// then updated with single atomic operations, so the hot paths — a publish,
// a checkpoint — never contend on the registry itself.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attach dimensions to an instrument (stage name, buffer name, HTTP
// route). Instruments with the same name and different labels are distinct
// time series under one metric family, exactly as in Prometheus.
type Labels map[string]string

// Registry holds all instruments of one process (or one run). The zero
// value is not usable; call NewRegistry.
type Registry struct {
	created time.Time

	mu     sync.Mutex
	series map[string]*series // keyed by name + canonical labels
}

// series is one registered time series: exactly one of the instrument
// fields is set, according to kind.
type series struct {
	name   string
	labels Labels
	key    string
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// NewRegistry returns an empty registry. Its creation time anchors the
// rate column of WriteSummary.
func NewRegistry() *Registry {
	return &Registry{created: time.Now(), series: map[string]*series{}}
}

// seriesKey canonicalizes name+labels so the same instrument is returned
// for the same identity regardless of map iteration order.
func seriesKey(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte(0)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// lookup returns the series for name+labels, creating it with make if
// absent. It panics if the name is already registered with a different
// instrument kind — that is a programming error, like redeclaring a
// variable with a different type.
func (r *Registry) lookup(name string, labels Labels, k kind, build func(*series)) *series {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("telemetry: %q already registered as a %v, requested as a %v", name, s.kind, k))
		}
		return s
	}
	s := &series{name: name, labels: copyLabels(labels), key: key, kind: k}
	build(s)
	r.series[key] = s
	return s
}

// copyLabels defensively copies labels so later caller mutation cannot
// desynchronize a series from its canonical key.
func copyLabels(labels Labels) Labels {
	if len(labels) == 0 {
		return nil
	}
	c := Labels{}
	for k, v := range labels {
		c[k] = v
	}
	return c
}

// Counter returns the monotonically increasing counter registered under
// name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	s := r.lookup(name, labels, kindCounter, func(s *series) { s.counter = &Counter{} })
	return s.counter
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	s := r.lookup(name, labels, kindGauge, func(s *series) { s.gauge = &Gauge{} })
	return s.gauge
}

// Histogram returns the histogram registered under name+labels, creating it
// on first use. Observations are raw uint64 values bucketed on a fixed
// power-of-two log scale.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	s := r.lookup(name, labels, kindHistogram, func(s *series) { s.hist = &Histogram{scale: 1} })
	return s.hist
}

// DurationHistogram returns a histogram whose observations are
// time.Durations, exposed in seconds (the Prometheus convention; name it
// *_seconds). Internally it buckets nanoseconds on the same power-of-two
// log scale.
func (r *Registry) DurationHistogram(name string, labels Labels) *Histogram {
	s := r.lookup(name, labels, kindHistogram, func(s *series) { s.hist = &Histogram{scale: 1e-9} })
	return s.hist
}

// snapshot returns the registered series sorted by name then label key, for
// deterministic exposition.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].key < out[j].key
	})
	return out
}

// Counter is a monotonically increasing counter. The zero value is ready to
// use, but instruments should be obtained from a Registry so they are
// exposed.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, in-flight requests,
// a version watermark).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetMax raises the gauge to v if v is greater — a monotone watermark
// (highest published version, deepest queue).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bucket i holds observations v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Observations are recorded
// with two atomic adds and no locks, so every stage goroutine can write the
// same histogram concurrently.
const histBuckets = 65

// Histogram is a fixed log2-bucket histogram. Observations and reads are
// lock-free; a read concurrent with writes sees a slightly torn but
// monotone view, which is exactly what scrape-based monitoring tolerates.
type Histogram struct {
	scale   float64 // exposition multiplier: 1 for raw values, 1e-9 for ns→s
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one raw value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration records a duration (negative durations clamp to zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed raw values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the mean observation in exposition units (seconds for
// duration histograms), or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) * h.scale / float64(n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1)
// in exposition units: the upper edge of the bucket containing it. Log2
// buckets bound the estimate within 2x of the true value.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return h.bucketUpper(i)
		}
	}
	return h.bucketUpper(histBuckets - 1)
}

// bucketUpper is bucket i's inclusive upper bound in exposition units.
func (h *Histogram) bucketUpper(i int) float64 {
	if i >= 64 {
		return math.Inf(1)
	}
	// Bucket i holds values < 2^i (bits.Len64(v) == i ⇒ v <= 2^i - 1).
	return float64(uint64(1)<<uint(i)) * h.scale
}

// cumulative returns the per-bucket cumulative counts up to and including
// the highest nonempty bucket, ready for Prometheus `le` exposition.
func (h *Histogram) cumulative() (uppers []float64, counts []uint64) {
	top := -1
	var raw [histBuckets]uint64
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += raw[i]
		uppers = append(uppers, h.bucketUpper(i))
		counts = append(counts, cum)
	}
	return uppers, counts
}
