package telemetry

import (
	"time"

	"anytime/internal/serve"
)

// Metric names of the serving-runtime binding, exported like the pipeline
// names above.
const (
	MetricServePoolGets      = "anytime_serve_pool_gets_total"
	MetricServePoolPuts      = "anytime_serve_pool_puts_total"
	MetricServeQueueDepthMax = "anytime_serve_queue_depth_max"
	MetricServeQueueWait     = "anytime_serve_queue_wait_seconds"
	MetricServeRejects       = "anytime_serve_rejected_total"
	MetricServeShedFactor    = "anytime_serve_shed_factor"
	MetricServeSheds         = "anytime_serve_sheds_total"
	MetricServeDeliveries    = "anytime_serve_deliveries_total"
	MetricServeDeliveryTime  = "anytime_serve_delivery_seconds"
)

// ServeHooks returns a serve.Hooks recording the serving runtime's
// behavior into reg:
//
//   - anytime_serve_pool_gets_total{pool,source}: checkouts by source
//     (warm = reused from the idle set, fresh = built on demand). The warm
//     fraction is the pool hit rate.
//   - anytime_serve_pool_puts_total{pool,fate}: check-ins by fate
//     (retained | discarded).
//   - anytime_serve_queue_depth_max: high-watermark of requests waiting
//     for an execution slot (sampled at each enqueue; read
//     serve.Queue.Depth for the instantaneous value).
//   - anytime_serve_queue_wait_seconds: histogram of slot-wait time,
//     including the zero-wait fast path.
//   - anytime_serve_rejected_total: requests turned away by admission
//     control.
//   - anytime_serve_shed_factor: the most recent shed factor applied
//     (×1000, as the registry is integer-valued; 1000 = no shedding).
//   - anytime_serve_sheds_total: requests whose contract was shed.
//   - anytime_serve_deliveries_total{outcome}: delivered snapshots by
//     outcome (precise | approximate).
//   - anytime_serve_delivery_seconds{outcome}: request run time from
//     automaton start to delivery, excluding queue wait.
//
// One Hooks value serves every pool and queue in the process; all
// instruments are safe for concurrent use.
func ServeHooks(reg *Registry) *serve.Hooks {
	queueDepth := reg.Gauge(MetricServeQueueDepthMax, nil)
	queueWait := reg.DurationHistogram(MetricServeQueueWait, nil)
	rejects := reg.Counter(MetricServeRejects, nil)
	shedFactor := reg.Gauge(MetricServeShedFactor, nil)
	shedFactor.Set(1000)
	sheds := reg.Counter(MetricServeSheds, nil)
	return &serve.Hooks{
		PoolGet: func(pool string, warm bool) {
			source := "fresh"
			if warm {
				source = "warm"
			}
			reg.Counter(MetricServePoolGets, Labels{"pool": pool, "source": source}).Inc()
		},
		PoolPut: func(pool string, retained bool) {
			fate := "discarded"
			if retained {
				fate = "retained"
			}
			reg.Counter(MetricServePoolPuts, Labels{"pool": pool, "fate": fate}).Inc()
		},
		QueueEnqueue: func(depth int) {
			queueDepth.SetMax(int64(depth))
		},
		QueueAcquire: func(wait time.Duration) {
			queueWait.ObserveDuration(wait)
		},
		QueueReject: func() {
			rejects.Inc()
		},
		Shed: func(factor float64) {
			shedFactor.Set(int64(factor * 1000))
			sheds.Inc()
		},
		Deliver: func(interrupted, final bool, elapsed time.Duration) {
			outcome := "precise"
			if !final {
				outcome = "approximate"
			}
			labels := Labels{"outcome": outcome}
			reg.Counter(MetricServeDeliveries, labels).Inc()
			reg.DurationHistogram(MetricServeDeliveryTime, labels).ObserveDuration(elapsed)
		},
	}
}
