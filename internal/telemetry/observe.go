package telemetry

import (
	"errors"
	"sync"
	"time"

	"anytime/internal/core"
)

// Metric names shared by the bindings below. Exported so exposition
// consumers (tests, dashboards) don't have to hardcode strings.
const (
	MetricCheckpointLatency = "anytime_stage_checkpoint_latency_seconds"
	MetricCheckpointTotal   = "anytime_stage_checkpoints_total"
	MetricPauseWait         = "anytime_stage_pause_wait_seconds"
	MetricStageDuration     = "anytime_stage_duration_seconds"
	MetricStagesActive      = "anytime_stages_active"
	MetricRunsTotal         = "anytime_automaton_runs_total"
	MetricRunDuration       = "anytime_automaton_duration_seconds"
	MetricAutomataActive    = "anytime_automata_active"
	MetricBufferPublish     = "anytime_buffer_publish_total"
	MetricBufferVersion     = "anytime_buffer_version"
	MetricBufferFinal       = "anytime_buffer_final"
	MetricPublishInterval   = "anytime_buffer_publish_interval_seconds"
	MetricStreamDepth       = "anytime_stream_depth"
	MetricStreamDepthMax    = "anytime_stream_depth_max"
)

// PipelineHooks returns a core.Hooks that records a running automaton's
// scheduling behavior into reg:
//
//   - anytime_stage_checkpoint_latency_seconds{stage}: histogram of the
//     interval between a stage's successive checkpoints — the unit-of-work
//     latency that bounds how promptly Pause and Stop take effect.
//   - anytime_stage_checkpoints_total{stage}: checkpoint count.
//   - anytime_stage_pause_wait_seconds{stage}: histogram of time spent
//     blocked at the pause gate (only checkpoints that actually waited).
//   - anytime_stage_duration_seconds{stage}: stage loop lifetime.
//   - anytime_stages_active: currently running stage goroutines.
//   - anytime_automaton_runs_total{outcome}: finished runs by outcome
//     (precise | stopped | failed).
//   - anytime_automaton_duration_seconds{outcome}: run wall time.
//   - anytime_automata_active: automata currently between Start and finish.
//
// Attach the result with Automaton.SetHooks before Start. One Hooks value
// may be shared by many automata (a server wiring every request's pipeline
// into one registry); all instruments are safe for concurrent use.
func PipelineHooks(reg *Registry) *core.Hooks {
	p := &pipelineObserver{reg: reg}
	return &core.Hooks{
		AutomatonStart:  p.automatonStart,
		AutomatonFinish: p.automatonFinish,
		StageStart:      p.stageStart,
		StageFinish:     p.stageFinish,
		Checkpoint:      p.checkpoint,
	}
}

// pipelineObserver caches per-stage instrument handles so the hot
// checkpoint path is two atomic adds plus one sync.Map hit.
type pipelineObserver struct {
	reg *Registry

	// perStage maps stage name → *stageInstruments. Stage names recur
	// across runs (a server builds the same pipeline per request), so the
	// map stabilizes immediately and reads are lock-free.
	perStage sync.Map
}

type stageInstruments struct {
	latency     *Histogram
	checkpoints *Counter
	pauseWait   *Histogram
	duration    *Histogram

	// lastCheckpoint is the previous checkpoint's time in ns (0 = none
	// yet). A stage runs on one goroutine, but the same stage name may run
	// concurrently in several automata sharing these hooks; the mutex keeps
	// the interval measurement consistent, and is uncontended in the
	// single-automaton case.
	mu             sync.Mutex
	lastCheckpoint time.Time
}

func (p *pipelineObserver) stage(name string) *stageInstruments {
	if v, ok := p.perStage.Load(name); ok {
		return v.(*stageInstruments)
	}
	labels := Labels{"stage": name}
	si := &stageInstruments{
		latency:     p.reg.DurationHistogram(MetricCheckpointLatency, labels),
		checkpoints: p.reg.Counter(MetricCheckpointTotal, labels),
		pauseWait:   p.reg.DurationHistogram(MetricPauseWait, labels),
		duration:    p.reg.DurationHistogram(MetricStageDuration, labels),
	}
	v, _ := p.perStage.LoadOrStore(name, si)
	return v.(*stageInstruments)
}

func (p *pipelineObserver) automatonStart(stages int) {
	p.reg.Gauge(MetricAutomataActive, nil).Inc()
}

func (p *pipelineObserver) automatonFinish(outcome error, elapsed time.Duration) {
	p.reg.Gauge(MetricAutomataActive, nil).Dec()
	labels := Labels{"outcome": outcomeLabel(outcome)}
	p.reg.Counter(MetricRunsTotal, labels).Inc()
	p.reg.DurationHistogram(MetricRunDuration, labels).ObserveDuration(elapsed)
}

func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "precise"
	case errors.Is(err, core.ErrStopped):
		return "stopped"
	default:
		return "failed"
	}
}

func (p *pipelineObserver) stageStart(stage string) {
	p.reg.Gauge(MetricStagesActive, nil).Inc()
	si := p.stage(stage)
	si.mu.Lock()
	si.lastCheckpoint = time.Time{} // fresh run: no prior checkpoint
	si.mu.Unlock()
}

func (p *pipelineObserver) stageFinish(stage string, err error, elapsed time.Duration) {
	p.reg.Gauge(MetricStagesActive, nil).Dec()
	p.stage(stage).duration.ObserveDuration(elapsed)
}

func (p *pipelineObserver) checkpoint(stage string, wait time.Duration) {
	si := p.stage(stage)
	si.checkpoints.Inc()
	if wait > 0 {
		si.pauseWait.ObserveDuration(wait)
	}
	now := time.Now()
	si.mu.Lock()
	last := si.lastCheckpoint
	si.lastCheckpoint = now
	si.mu.Unlock()
	if !last.IsZero() {
		// Exclude pause time: the interval measures the stage's work
		// between checkpoints, not the operator holding the gate shut.
		si.latency.ObserveDuration(now.Sub(last) - wait)
	}
}

// ObserveBuffer registers a telemetry observer on buf, recording into reg:
//
//   - anytime_buffer_publish_total{buffer}: publish count.
//   - anytime_buffer_version{buffer}: highest published version watermark.
//   - anytime_buffer_final{buffer}: 1 once the precise output is published.
//   - anytime_buffer_publish_interval_seconds{buffer}: histogram of the
//     time between successive publishes (the output refresh rate).
//
// Like any publish observer it must be attached before the automaton
// starts, and it coexists with a trace.Tracer on the same buffer.
func ObserveBuffer[T any](reg *Registry, buf *core.Buffer[T]) {
	labels := Labels{"buffer": buf.Name()}
	publishes := reg.Counter(MetricBufferPublish, labels)
	version := reg.Gauge(MetricBufferVersion, labels)
	final := reg.Gauge(MetricBufferFinal, labels)
	interval := reg.DurationHistogram(MetricPublishInterval, labels)
	var mu sync.Mutex
	var lastPublish time.Time
	buf.OnPublish(func(s core.Snapshot[T]) {
		publishes.Inc()
		version.SetMax(int64(s.Version))
		if s.Final {
			final.Set(1)
		}
		now := time.Now()
		mu.Lock()
		last := lastPublish
		lastPublish = now
		mu.Unlock()
		if !last.IsZero() {
			interval.ObserveDuration(now.Sub(last))
		}
	})
}

// ObserveStream registers a depth observer on the synchronous edge st,
// recording into reg:
//
//   - anytime_stream_depth{edge}: in-flight updates after the latest
//     send/receive.
//   - anytime_stream_depth_max{edge}: deepest the queue has been — how far
//     the consumer fell behind its producer.
//
// It must be attached before the automaton starts.
func ObserveStream[X any](reg *Registry, st *core.Stream[X], edge string) {
	labels := Labels{"edge": edge}
	depth := reg.Gauge(MetricStreamDepth, labels)
	depthMax := reg.Gauge(MetricStreamDepthMax, labels)
	st.OnDepth(func(d, capacity int) {
		depth.Set(int64(d))
		depthMax.SetMax(int64(d))
	})
}
