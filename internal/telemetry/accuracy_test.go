package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"anytime/internal/core"
	"anytime/internal/pix"
)

// noisyToPrecise builds a one-stage automaton that publishes progressively
// less-wrong copies of ref, ending with the exact reference.
func noisyToPrecise(t *testing.T, ref *pix.Image, out *core.Buffer[*pix.Image]) *core.Automaton {
	t.Helper()
	a := core.New()
	if err := a.AddStage("refine", func(c *core.Context) error {
		for step := 3; step >= 0; step-- {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			img := ref.Clone()
			for i := 0; i < len(img.Pix); i += 7 {
				img.Pix[i] += int32(step * 40)
			}
			if _, err := out.Publish(img, step == 0); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAccuracyRecorderCurve(t *testing.T) {
	ref, err := pix.SyntheticGray(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := core.NewBuffer[*pix.Image]("out", nil)
	rec := NewAccuracyRecorder(ref)
	ObserveAccuracy(rec, out)
	a := noisyToPrecise(t, ref, out)
	rec.Begin()
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	curve, err := rec.Curve()
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve has %d samples, want 4", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].SNR < curve[i-1].SNR {
			t.Errorf("SNR not nondecreasing: %v", curve)
		}
		if curve[i].Elapsed < curve[i-1].Elapsed {
			t.Errorf("elapsed not monotone: %v", curve)
		}
		if curve[i].Version != curve[i-1].Version+1 {
			t.Errorf("versions not sequential: %v", curve)
		}
	}
	last := curve[len(curve)-1]
	if !last.Final {
		t.Error("last sample not final")
	}
	if !isInf(last.SNR) {
		t.Errorf("final SNR = %v, want +Inf (bit-exact)", last.SNR)
	}
	// Cached call returns the same curve.
	again, err := rec.Curve()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(curve) {
		t.Error("cached curve differs")
	}
}

func isInf(v float64) bool { return v > 1e308 }

func TestAccuracyRecorderJSONAndProfile(t *testing.T) {
	ref, err := pix.SyntheticGray(16, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := core.NewBuffer[*pix.Image]("out", nil)
	rec := NewAccuracyRecorder(ref)
	ObserveAccuracy(rec, out)
	a := noisyToPrecise(t, ref, out)
	rec.Begin()
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := rec.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		ElapsedNS int64  `json:"elapsed_ns"`
		Version   uint64 `json:"version"`
		SNRdB     string `json:"snr_db"`
		Final     bool   `json:"final"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("JSON export not decodable: %v\n%s", err, b.String())
	}
	if len(decoded) != 4 || decoded[3].SNRdB != "inf" || !decoded[3].Final {
		t.Errorf("JSON export wrong: %+v", decoded)
	}

	// The harness Profile conversion is the shared plot code path.
	p, err := rec.Profile("refine", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) != 4 || p.App != "refine" {
		t.Fatalf("profile = %+v", p)
	}
	if at := p.PreciseAt(); at <= 0 {
		t.Error("profile never reached precise")
	}
	var plot strings.Builder
	if err := p.Plot(&plot, 40, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plot.String(), "refine") {
		t.Errorf("plot output:\n%s", plot.String())
	}
	if _, err := rec.Profile("x", 0); err == nil {
		t.Error("nonpositive baseline accepted")
	}

	// Begin resets the curve.
	rec.Begin()
	curve, err := rec.Curve()
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 0 {
		t.Errorf("curve after Begin has %d samples", len(curve))
	}
}
