package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"anytime/internal/core"
	"anytime/internal/harness"
	"anytime/internal/metrics"
	"anytime/internal/pix"
)

// AccuracyRecorder samples a buffer's accuracy-versus-wallclock curve — the
// live equivalent of the paper's §V runtime–accuracy profiles (Figures
// 11–15). It attaches as a publish observer and stores only a timestamp and
// the published snapshot (immutable by Property 3); SNR against the precise
// reference is computed lazily at export time, so recording never delays
// the pipeline being measured. Exports share the harness's Profile code
// path, so a live run and an EXPERIMENTS figure render identically.
type AccuracyRecorder struct {
	ref *pix.Image

	mu      sync.Mutex
	copy    bool
	start   time.Time
	samples []accuracySample
	curve   []AccuracySample // lazily computed cache, invalidated on record
}

type accuracySample struct {
	at      time.Duration
	version core.Version
	final   bool
	img     *pix.Image
}

// AccuracySample is one exported point of the curve.
type AccuracySample struct {
	// Elapsed is wall time since Begin (or the recorder's creation).
	Elapsed time.Duration `json:"elapsed_ns"`
	// Version is the snapshot's buffer version.
	Version core.Version `json:"version"`
	// SNR is the accuracy in decibels against the precise reference
	// (+Inf when bit-exact; serialized as "inf" in JSON).
	SNR float64 `json:"-"`
	// Final marks the precise output.
	Final bool `json:"final"`
}

// NewAccuracyRecorder returns a recorder comparing published images against
// the precise reference ref.
func NewAccuracyRecorder(ref *pix.Image) *AccuracyRecorder {
	return &AccuracyRecorder{ref: ref, start: time.Now()}
}

// CopyOnRecord makes the recorder deep-copy each published image instead of
// retaining the snapshot pointer. Required when the observed stage
// publishes through the zero-copy tile ring (pix.SnapshotTiles): the
// recorder holds images until export, far past the ring's reuse window.
// Recording then costs a full-image copy per publish — exactly the overhead
// the ring removed — so enable it only on instrumented runs. Call it before
// the automaton starts.
func (r *AccuracyRecorder) CopyOnRecord() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.copy = true
}

// Begin (re)sets the curve's time origin and discards prior samples. Call
// it immediately before starting the automaton.
func (r *AccuracyRecorder) Begin() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.start = time.Now()
	r.samples = r.samples[:0]
	r.curve = nil
}

// ObserveAccuracy attaches rec as a publish observer of buf. Like any
// observer it must be attached before the automaton starts; it coexists
// with tracers and metric observers on the same buffer.
func ObserveAccuracy(rec *AccuracyRecorder, buf *core.Buffer[*pix.Image]) {
	buf.OnPublish(func(s core.Snapshot[*pix.Image]) { rec.record(s) })
}

func (r *AccuracyRecorder) record(s core.Snapshot[*pix.Image]) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	img := s.Value
	if r.copy {
		img = img.Clone()
	}
	r.samples = append(r.samples, accuracySample{
		at:      now.Sub(r.start),
		version: s.Version,
		final:   s.Final,
		img:     img,
	})
	r.curve = nil
}

// Curve returns the recorded samples with SNR computed against the
// reference, in publish order. The computation is cached until the next
// publish.
func (r *AccuracyRecorder) Curve() ([]AccuracySample, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.curve != nil {
		return append([]AccuracySample(nil), r.curve...), nil
	}
	curve := make([]AccuracySample, 0, len(r.samples))
	for _, s := range r.samples {
		db, err := metrics.SNR(r.ref.Pix, s.img.Pix)
		if err != nil {
			return nil, fmt.Errorf("telemetry: accuracy sample v%d: %w", s.version, err)
		}
		curve = append(curve, AccuracySample{Elapsed: s.at, Version: s.version, SNR: db, Final: s.final})
	}
	r.curve = curve
	return append([]AccuracySample(nil), curve...), nil
}

// Profile converts the curve into the harness's Profile type — the same
// structure EXPERIMENTS figures are plotted from — normalizing elapsed time
// by baseline (the precise run's wall time).
func (r *AccuracyRecorder) Profile(app string, baseline time.Duration) (harness.Profile, error) {
	if baseline <= 0 {
		return harness.Profile{}, fmt.Errorf("telemetry: nonpositive baseline %v", baseline)
	}
	curve, err := r.Curve()
	if err != nil {
		return harness.Profile{}, err
	}
	p := harness.Profile{App: app, Baseline: baseline}
	for _, s := range curve {
		p.Points = append(p.Points, harness.Point{
			Runtime: float64(s.Elapsed) / float64(baseline),
			SNR:     s.SNR,
		})
		if s.Elapsed > p.Total {
			p.Total = s.Elapsed
		}
	}
	return p, nil
}

// WriteJSON emits the curve as a JSON array of
// {elapsed_ns, version, snr_db, final} objects, with +Inf SNR serialized as
// "inf" (the harness's convention).
func (r *AccuracyRecorder) WriteJSON(w io.Writer) error {
	curve, err := r.Curve()
	if err != nil {
		return err
	}
	type jsonSample struct {
		ElapsedNS int64  `json:"elapsed_ns"`
		Version   uint64 `json:"version"`
		SNRdB     string `json:"snr_db"`
		Final     bool   `json:"final"`
	}
	out := make([]jsonSample, len(curve))
	for i, s := range curve {
		out[i] = jsonSample{
			ElapsedNS: int64(s.Elapsed),
			Version:   uint64(s.Version),
			SNRdB:     metrics.FormatDB(s.SNR),
			Final:     s.Final,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
