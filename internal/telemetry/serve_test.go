package telemetry

import (
	"testing"
	"time"
)

// TestServeHooksRecord exercises every binding in ServeHooks by invoking
// the hooks the way the serving runtime does and reading the series back.
func TestServeHooksRecord(t *testing.T) {
	reg := NewRegistry()
	h := ServeHooks(reg)
	if h == nil || h.PoolGet == nil || h.PoolPut == nil || h.QueueEnqueue == nil ||
		h.QueueAcquire == nil || h.QueueReject == nil || h.Shed == nil || h.Deliver == nil {
		t.Fatal("ServeHooks left a callback nil")
		return // t.Fatal never returns; the return carries the guard fact
	}

	h.PoolGet("blur", false)
	h.PoolGet("blur", true)
	h.PoolGet("blur", true)
	h.PoolPut("blur", true)
	h.PoolPut("blur", false)
	if got := reg.Counter(MetricServePoolGets, Labels{"pool": "blur", "source": "warm"}).Value(); got != 2 {
		t.Errorf("warm gets = %d, want 2", got)
	}
	if got := reg.Counter(MetricServePoolGets, Labels{"pool": "blur", "source": "fresh"}).Value(); got != 1 {
		t.Errorf("fresh gets = %d, want 1", got)
	}
	if got := reg.Counter(MetricServePoolPuts, Labels{"pool": "blur", "fate": "discarded"}).Value(); got != 1 {
		t.Errorf("discarded puts = %d, want 1", got)
	}

	h.QueueEnqueue(3)
	h.QueueEnqueue(1) // watermark must not regress
	if got := reg.Gauge(MetricServeQueueDepthMax, nil).Value(); got != 3 {
		t.Errorf("queue depth watermark = %d, want 3", got)
	}
	h.QueueAcquire(0)
	h.QueueAcquire(5 * time.Millisecond)
	if got := reg.DurationHistogram(MetricServeQueueWait, nil).Count(); got != 2 {
		t.Errorf("queue wait observations = %d, want 2", got)
	}
	h.QueueReject()
	if got := reg.Counter(MetricServeRejects, nil).Value(); got != 1 {
		t.Errorf("rejects = %d, want 1", got)
	}

	if got := reg.Gauge(MetricServeShedFactor, nil).Value(); got != 1000 {
		t.Errorf("initial shed factor = %d, want 1000", got)
	}
	h.Shed(0.25)
	if got := reg.Gauge(MetricServeShedFactor, nil).Value(); got != 250 {
		t.Errorf("shed factor = %d, want 250", got)
	}
	if got := reg.Counter(MetricServeSheds, nil).Value(); got != 1 {
		t.Errorf("sheds = %d, want 1", got)
	}

	h.Deliver(true, false, 10*time.Millisecond)
	h.Deliver(false, true, 20*time.Millisecond)
	if got := reg.Counter(MetricServeDeliveries, Labels{"outcome": "approximate"}).Value(); got != 1 {
		t.Errorf("approximate deliveries = %d, want 1", got)
	}
	if got := reg.Counter(MetricServeDeliveries, Labels{"outcome": "precise"}).Value(); got != 1 {
		t.Errorf("precise deliveries = %d, want 1", got)
	}
	if got := reg.DurationHistogram(MetricServeDeliveryTime, Labels{"outcome": "precise"}).Count(); got != 1 {
		t.Errorf("precise delivery observations = %d, want 1", got)
	}
}
