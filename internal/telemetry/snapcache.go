package telemetry

import (
	"anytime/internal/snapcache"
)

// Metric names of the snapshot-cache binding. MetricSnapcacheSeeds is
// incremented by the serving tier (not the cache itself): a hit only
// becomes a seed once SeedFrom succeeds.
const (
	MetricSnapcacheHits      = "anytime_snapcache_hits_total"
	MetricSnapcacheMisses    = "anytime_snapcache_misses_total"
	MetricSnapcacheEvictions = "anytime_snapcache_evictions_total"
	MetricSnapcacheBytes     = "anytime_snapcache_bytes"
	MetricSnapcacheEntries   = "anytime_snapcache_entries"
	MetricSnapcacheSeeds     = "anytime_snapcache_seeds_total"
)

// SnapcacheHooks returns snapcache.Hooks recording cache behavior into reg:
//
//   - anytime_snapcache_hits_total{app} / anytime_snapcache_misses_total{app}:
//     lookups by outcome; the hit fraction is the repeat-traffic rate the
//     cache is actually capturing.
//   - anytime_snapcache_evictions_total{reason}: entries dropped, by
//     reason (lru = capacity, ttl = expired at lookup, replaced =
//     overwritten by a newer version).
//   - anytime_snapcache_bytes / anytime_snapcache_entries: current cache
//     payload size and entry count.
//
// The companion anytime_snapcache_seeds_total{mode} (mode = warm | delta)
// is owned by the serving tier, which increments it when a hit actually
// seeds an automaton. All instruments are safe for concurrent use.
func SnapcacheHooks(reg *Registry) *snapcache.Hooks {
	bytes := reg.Gauge(MetricSnapcacheBytes, nil)
	entries := reg.Gauge(MetricSnapcacheEntries, nil)
	return &snapcache.Hooks{
		Hit: func(app string) {
			reg.Counter(MetricSnapcacheHits, Labels{"app": app}).Inc()
		},
		Miss: func(app string) {
			reg.Counter(MetricSnapcacheMisses, Labels{"app": app}).Inc()
		},
		Evict: func(reason string) {
			reg.Counter(MetricSnapcacheEvictions, Labels{"reason": reason}).Inc()
		},
		Size: func(b int64, n int) {
			bytes.Set(b)
			entries.Set(int64(n))
		},
	}
}
