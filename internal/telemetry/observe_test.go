package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"

	"anytime/internal/core"
	"anytime/internal/trace"
)

// runInstrumentedPipeline builds and runs a two-stage pipeline (diffusive
// producer → synchronous distributive consumer) with full telemetry
// attached: pipeline hooks, both buffer observers, and the stream depth
// observer. It returns the registry for assertions. Run under -race this is
// the ISSUE's "telemetry attached in at least one multi-stage pipeline
// test": every stage goroutine writes the same registry.
func runInstrumentedPipeline(t *testing.T, reg *Registry) {
	t.Helper()
	const total = 256
	st, err := core.NewStream[int](8)
	if err != nil {
		t.Fatal(err)
	}
	ObserveStream(reg, st, "sum-edge")
	prodOut := core.NewBuffer[int]("producer-out", nil)
	ObserveBuffer(reg, prodOut)
	sumOut := core.NewBuffer[int64]("sum-out", nil)
	ObserveBuffer(reg, sumOut)

	a := core.New()
	if err := a.AddStage("producer", func(c *core.Context) error {
		for i := 0; i < total; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if err := st.Send(c, core.Update[int]{Seq: i + 1, Data: i, Last: i == total-1}); err != nil {
				return err
			}
			if i%32 == 31 {
				if _, err := prodOut.Publish(i+1, i == total-1); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("sum", func(c *core.Context) error {
		var acc int64
		return core.SyncConsume(c, st, func(u core.Update[int]) error {
			acc += int64(u.Data)
			if u.Seq%32 == 0 || u.Last {
				if _, err := sumOut.Publish(acc, u.Last); err != nil {
					return err
				}
			}
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	a.SetHooks(PipelineHooks(reg))
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	// AutomatonFinish fires asynchronously after done; wait for it so the
	// lifecycle metrics below are settled.
	waitFor(t, func() bool {
		return reg.Counter(MetricRunsTotal, Labels{"outcome": "precise"}).Value() == 1
	})
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPipelineHooksRecordFullRun(t *testing.T) {
	reg := NewRegistry()
	runInstrumentedPipeline(t, reg)

	if v := reg.Counter(MetricBufferPublish, Labels{"buffer": "producer-out"}).Value(); v != 8 {
		t.Errorf("producer publishes = %d, want 8", v)
	}
	if v := reg.Counter(MetricBufferPublish, Labels{"buffer": "sum-out"}).Value(); v != 8 {
		t.Errorf("sum publishes = %d, want 8", v)
	}
	if v := reg.Gauge(MetricBufferVersion, Labels{"buffer": "sum-out"}).Value(); v != 8 {
		t.Errorf("sum version watermark = %d, want 8", v)
	}
	if v := reg.Gauge(MetricBufferFinal, Labels{"buffer": "sum-out"}).Value(); v != 1 {
		t.Errorf("sum final gauge = %d, want 1", v)
	}
	for _, stage := range []string{"producer", "sum"} {
		if v := reg.Counter(MetricCheckpointTotal, Labels{"stage": stage}).Value(); v == 0 {
			t.Errorf("stage %s recorded no checkpoints", stage)
		}
		if v := reg.DurationHistogram(MetricStageDuration, Labels{"stage": stage}).Count(); v != 1 {
			t.Errorf("stage %s duration observations = %d, want 1", stage, v)
		}
	}
	if v := reg.DurationHistogram(MetricCheckpointLatency, Labels{"stage": "producer"}).Count(); v == 0 {
		t.Error("no checkpoint latency observations")
	}
	if v := reg.Gauge(MetricStagesActive, nil).Value(); v != 0 {
		t.Errorf("stages active after finish = %d", v)
	}
	if v := reg.Gauge(MetricAutomataActive, nil).Value(); v != 0 {
		t.Errorf("automata active after finish = %d", v)
	}
	if v := reg.Gauge(MetricStreamDepthMax, Labels{"edge": "sum-edge"}).Value(); v < 0 {
		t.Errorf("stream depth max = %d", v)
	}
	if v := reg.DurationHistogram(MetricRunDuration, Labels{"outcome": "precise"}).Count(); v != 1 {
		t.Errorf("run duration observations = %d, want 1", v)
	}

	// The whole registry must render as valid exposition including the
	// acceptance-criteria families.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"anytime_stage_checkpoint_latency_seconds_bucket",
		`anytime_buffer_publish_total{buffer="sum-out"} 8`,
		"anytime_automaton_runs_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestStoppedRunRecordsStoppedOutcome(t *testing.T) {
	reg := NewRegistry()
	out := core.NewBuffer[int]("out", nil)
	ObserveBuffer(reg, out)
	a := core.New()
	if err := a.AddStage("spin", func(c *core.Context) error {
		i := 0
		for {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			i++
			if _, err := out.Publish(i, false); err != nil {
				return err
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	a.SetHooks(PipelineHooks(reg))
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return reg.Counter(MetricBufferPublish, Labels{"buffer": "out"}).Value() > 2
	})
	a.Stop()
	waitFor(t, func() bool {
		return reg.Counter(MetricRunsTotal, Labels{"outcome": "stopped"}).Value() == 1
	})
	if v := reg.Gauge(MetricBufferFinal, Labels{"buffer": "out"}).Value(); v != 0 {
		t.Errorf("final gauge = %d for an interrupted run", v)
	}
}

// TestTracerAndTelemetryShareBuffer is the ISSUE's regression test: a
// buffer with both a Tracer and a telemetry observer attached must deliver
// every publish to both (the seed's OnPublish silently replaced the
// previous observer).
func TestTracerAndTelemetryShareBuffer(t *testing.T) {
	reg := NewRegistry()
	tr := trace.New()
	out := core.NewBuffer[int]("shared", nil)
	trace.Attach(tr, out)
	ObserveBuffer(reg, out)

	a := core.New()
	const publishes = 6
	if err := a.AddStage("s", func(c *core.Context) error {
		for i := 1; i <= publishes; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, i == publishes); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tr.Start()
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Events()); got != publishes {
		t.Errorf("tracer saw %d events, want %d", got, publishes)
	}
	if got := reg.Counter(MetricBufferPublish, Labels{"buffer": "shared"}).Value(); got != publishes {
		t.Errorf("telemetry saw %d publishes, want %d", got, publishes)
	}
	if got := tr.Summary()["shared"]; !got.Finalized {
		t.Error("tracer missed the final publish")
	}
	if got := reg.Gauge(MetricBufferFinal, Labels{"buffer": "shared"}).Value(); got != 1 {
		t.Error("telemetry missed the final publish")
	}
}

func TestPauseWaitRecorded(t *testing.T) {
	reg := NewRegistry()
	a := core.New()
	started := make(chan struct{})
	var once bool
	if err := a.AddStage("s", func(c *core.Context) error {
		for i := 0; i < 2; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if !once {
				once = true
				close(started)
				time.Sleep(5 * time.Millisecond) // let the test pause the gate
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	a.SetHooks(PipelineHooks(reg))
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-started
	a.Pause()
	time.Sleep(20 * time.Millisecond)
	a.Resume()
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if v := reg.DurationHistogram(MetricPauseWait, Labels{"stage": "s"}).Count(); v == 0 {
		t.Error("pause wait histogram recorded nothing despite a held gate")
	}
}
