package telemetry

import "anytime/internal/reqtrace"

// Metric names of the flight-recorder binding.
const (
	MetricReqtraceRecorded   = "anytime_reqtrace_recorded_total"
	MetricReqtraceSampledOut = "anytime_reqtrace_sampled_out_total"
	MetricReqtraceEvicted    = "anytime_reqtrace_evicted_total"
)

// ReqtraceHooks returns a reqtrace.Hooks recording the flight recorder's
// retention decisions into reg, so the sampling policy is auditable from
// /metrics alongside the traffic it filters:
//
//   - anytime_reqtrace_recorded_total{category}: traces retained, by the
//     category they were filed under (error | rejected | deadline-miss |
//     shed | slow | sampled).
//   - anytime_reqtrace_sampled_out_total: OK traces counted but dropped by
//     1-in-N sampling. recorded{category="sampled"} + sampled_out together
//     account for every unremarkable success.
//   - anytime_reqtrace_evicted_total: retained traces overwritten by the
//     bounded ring.
func ReqtraceHooks(reg *Registry) *reqtrace.Hooks {
	sampledOut := reg.Counter(MetricReqtraceSampledOut, nil)
	evicted := reg.Counter(MetricReqtraceEvicted, nil)
	return &reqtrace.Hooks{
		Recorded: func(category string) {
			reg.Counter(MetricReqtraceRecorded, Labels{"category": category}).Inc()
		},
		SampledOut: sampledOut.Inc,
		Evicted:    evicted.Inc,
	}
}
