package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestRouterHooksRecord exercises every binding in RouterHooks by invoking
// the hooks the way the router does and reading the series back.
func TestRouterHooksRecord(t *testing.T) {
	reg := NewRegistry()
	h := RouterHooks(reg)
	if h == nil || h.ForwardDone == nil || h.Hedge == nil || h.HedgeWin == nil ||
		h.HedgeCancel == nil || h.BudgetFloored == nil || h.MemberState == nil || h.Deliver == nil {
		t.Fatal("RouterHooks left a callback nil")
		return // t.Fatal never returns; the return carries the guard fact
	}

	h.ForwardDone("b1:8080", "primary", 3*time.Millisecond, true)
	h.ForwardDone("b1:8080", "primary", 4*time.Millisecond, true)
	h.ForwardDone("b2:8080", "hedge", 0, false)
	if got := reg.Counter(MetricRouterForwards, Labels{"member": "b1:8080", "role": "primary", "usable": "true"}).Value(); got != 2 {
		t.Errorf("primary forwards = %d, want 2", got)
	}
	if got := reg.Counter(MetricRouterForwards, Labels{"member": "b2:8080", "role": "hedge", "usable": "false"}).Value(); got != 1 {
		t.Errorf("failed hedge forwards = %d, want 1", got)
	}
	if got := reg.DurationHistogram(MetricRouterForwardRTT, Labels{"member": "b1:8080"}).Count(); got != 2 {
		t.Errorf("rtt observations = %d, want 2 (usable only)", got)
	}
	if got := reg.DurationHistogram(MetricRouterForwardRTT, Labels{"member": "b2:8080"}).Count(); got != 0 {
		t.Errorf("unusable forward observed into the RTT histogram")
	}

	h.Hedge(12 * time.Millisecond)
	if got := reg.Counter(MetricRouterHedges, nil).Value(); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	h.HedgeWin("hedge")
	h.HedgeWin("primary")
	if got := reg.Counter(MetricRouterHedgeWins, Labels{"role": "hedge"}).Value(); got != 1 {
		t.Errorf("hedge wins = %d, want 1", got)
	}
	h.HedgeCancel("b2:8080")
	if got := reg.Counter(MetricRouterHedgeCancels, Labels{"member": "b2:8080"}).Value(); got != 1 {
		t.Errorf("cancels = %d, want 1", got)
	}

	h.BudgetFloored()
	if got := reg.Counter(MetricRouterBudgetFloored, nil).Value(); got != 1 {
		t.Errorf("budget floored = %d, want 1", got)
	}
	h.MemberState("b2:8080", "down")
	if got := reg.Counter(MetricRouterMemberStates, Labels{"member": "b2:8080", "state": "down"}).Value(); got != 1 {
		t.Errorf("state transitions = %d, want 1", got)
	}

	h.Deliver("b1:8080", true, 20*time.Millisecond)
	h.Deliver("b1:8080", false, 5*time.Millisecond)
	if got := reg.Counter(MetricRouterDeliveries, Labels{"member": "b1:8080", "hedged": "true"}).Value(); got != 1 {
		t.Errorf("hedged deliveries = %d, want 1", got)
	}
	if got := reg.DurationHistogram(MetricRouterDeliveryTime, Labels{"hedged": "false"}).Count(); got != 1 {
		t.Errorf("unhedged delivery observations = %d, want 1", got)
	}

	// The family must render as valid exposition alongside everything else.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`anytime_router_forwards_total{member="b1:8080",role="primary",usable="true"} 2`,
		"anytime_router_forward_rtt_seconds_bucket",
		`anytime_router_deliveries_total{hedged="true",member="b1:8080"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
