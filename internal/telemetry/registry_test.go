package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", nil)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := reg.Counter("c_total", nil); again != c {
		t.Error("same identity returned a different counter")
	}
	g := reg.Gauge("g", Labels{"k": "v"})
	g.Set(10)
	g.Add(-3)
	g.Dec()
	g.Inc()
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	g.SetMax(3)
	if g.Value() != 7 {
		t.Error("SetMax lowered the gauge")
	}
	g.SetMax(42)
	if g.Value() != 42 {
		t.Error("SetMax did not raise the gauge")
	}
}

func TestLabelsDistinguishSeries(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", Labels{"stage": "a"})
	b := reg.Counter("x_total", Labels{"stage": "b"})
	if a == b {
		t.Fatal("different labels shared one counter")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Error("label crosstalk")
	}
	// Label map iteration order must not matter.
	one := reg.Gauge("y", Labels{"a": "1", "b": "2"})
	two := reg.Gauge("y", Labels{"b": "2", "a": "1"})
	if one != two {
		t.Error("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("same", nil)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("same", nil)
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", nil)
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 1110 {
		t.Errorf("sum = %d", h.Sum())
	}
	if mean := h.Mean(); math.Abs(mean-1110.0/7) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	// p50 of {0,1,2,3,4,100,1000}: 4th value is 3, bucket upper bound 4.
	if q := h.Quantile(0.5); q != 4 {
		t.Errorf("p50 = %v, want bucket upper 4", q)
	}
	// p100 lands in 1000's bucket (upper 1024).
	if q := h.Quantile(1); q != 1024 {
		t.Errorf("p100 = %v, want 1024", q)
	}
	if q := (&Histogram{scale: 1}).Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v", q)
	}
}

func TestDurationHistogramExposesSeconds(t *testing.T) {
	reg := NewRegistry()
	h := reg.DurationHistogram("d_seconds", nil)
	h.ObserveDuration(2 * time.Second)
	h.ObserveDuration(-5) // clamps to zero
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if mean := h.Mean(); math.Abs(mean-1.0) > 1e-9 {
		t.Errorf("mean = %v s, want 1", mean)
	}
}

func TestConcurrentObservations(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", nil)
	c := reg.Counter("c_total", nil)
	g := reg.Gauge("g", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(i))
				c.Inc()
				g.SetMax(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d", c.Value())
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d", h.Count())
	}
	if g.Value() != workers*per-1 {
		t.Errorf("gauge watermark = %d", g.Value())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("app_requests_total", Labels{"path": "/blur", "code": "200"}).Add(3)
	reg.Gauge("app_in_flight", nil).Set(2)
	h := reg.DurationHistogram("app_latency_seconds", Labels{"path": "/blur"})
	h.ObserveDuration(10 * time.Millisecond)
	h.ObserveDuration(20 * time.Millisecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE app_requests_total counter",
		`app_requests_total{code="200",path="/blur"} 3`,
		"# TYPE app_in_flight gauge",
		"app_in_flight 2",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{path="/blur",le="+Inf"} 2`,
		`app_latency_seconds_count{path="/blur"} 2`,
		`app_latency_seconds_sum{path="/blur"} 0.03`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be nondecreasing and end at count.
	var lastCum int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "app_latency_seconds_bucket") {
			continue
		}
		n, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
		if err != nil {
			t.Fatalf("unparseable bucket line %q", line)
		}
		if n < lastCum {
			t.Errorf("bucket counts decreased: %q after %d", line, lastCum)
		}
		lastCum = n
	}
	if lastCum != 2 {
		t.Errorf("final cumulative bucket = %d, want 2", lastCum)
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", nil).Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}

func TestExpvarSnapshotIsJSONable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", Labels{"x": "1"}).Add(7)
	reg.Gauge("g", nil).Set(-2)
	reg.Histogram("h", nil).Observe(16)
	raw, err := json.Marshal(reg.Expvar())
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]map[string]any
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatal(err)
	}
	if tree["c_total"][`{x="1"}`] != float64(7) {
		t.Errorf("counter in expvar tree = %v", tree["c_total"])
	}
	hist, ok := tree["h"]["{}"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("histogram in expvar tree = %v", tree["h"])
	}
}

func TestWriteSummaryTable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs_total", Labels{"outcome": "precise"}).Add(2)
	reg.DurationHistogram("lat_seconds", nil).ObserveDuration(time.Millisecond)
	var b strings.Builder
	if err := reg.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"METRIC", "runs_total", `{outcome="precise"}`, "counter", "lat_seconds", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
