package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): one `# TYPE` header per metric family,
// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`. Series are ordered by name then labels, so successive scrapes
// diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastFamily string
	for _, s := range r.snapshot() {
		if s.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
				return err
			}
			lastFamily = s.name
		}
		var err error
		switch s.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", s.name, formatLabels(s.labels, "", 0), s.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", s.name, formatLabels(s.labels, "", 0), s.gauge.Value())
		case kindHistogram:
			err = writeHistogram(w, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, s *series) error {
	h := s.hist
	uppers, counts := h.cumulative()
	for i, upper := range uppers {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, formatLabels(s.labels, "le", upper), counts[i]); err != nil {
			return err
		}
	}
	count := h.Count()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, formatLabels(s.labels, "le", math.Inf(1)), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, formatLabels(s.labels, "", 0), formatFloat(float64(h.Sum())*h.scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, formatLabels(s.labels, "", 0), count)
	return err
}

// formatLabels renders {k="v",...} with keys sorted, optionally appending
// an le label for histogram buckets. It returns "" when there is nothing to
// render.
func formatLabels(labels Labels, le string, upper float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if le != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		if math.IsInf(upper, 1) {
			fmt.Fprintf(&b, "%s=%q", le, "+Inf")
		} else {
			fmt.Fprintf(&b, "%s=%q", le, formatFloat(upper))
		}
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: the shortest
// representation that round-trips.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler returns an http.Handler serving WritePrometheus — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Expvar returns the registry as a JSON-friendly tree for expvar.Publish:
// map[metricName]map[labelString]value, histograms as {count, sum, mean,
// p50, p99}. Publish it as expvar.Func(reg.Expvar) and the stock
// /debug/vars handler exposes it.
func (r *Registry) Expvar() any {
	out := map[string]map[string]any{}
	for _, s := range r.snapshot() {
		family := out[s.name]
		if family == nil {
			family = map[string]any{}
			out[s.name] = family
		}
		label := formatLabels(s.labels, "", 0)
		if label == "" {
			label = "{}"
		}
		switch s.kind {
		case kindCounter:
			family[label] = s.counter.Value()
		case kindGauge:
			family[label] = s.gauge.Value()
		case kindHistogram:
			family[label] = map[string]any{
				"count": s.hist.Count(),
				"sum":   float64(s.hist.Sum()) * s.hist.scale,
				"mean":  s.hist.Mean(),
				"p50":   s.hist.Quantile(0.50),
				"p99":   s.hist.Quantile(0.99),
			}
		}
	}
	return out
}

// WriteSummary renders a human-readable table of every series — the
// `anytime -telemetry` exit report. Counters include a per-second rate over
// the registry's lifetime; histograms report count/mean/p50/p99.
func (r *Registry) WriteSummary(w io.Writer) error {
	elapsed := time.Since(r.created).Seconds()
	if elapsed <= 0 {
		elapsed = math.SmallestNonzeroFloat64
	}
	rows := [][4]string{{"METRIC", "LABELS", "KIND", "VALUE"}}
	for _, s := range r.snapshot() {
		label := formatLabels(s.labels, "", 0)
		var val string
		switch s.kind {
		case kindCounter:
			v := s.counter.Value()
			val = fmt.Sprintf("%d (%.2f/s)", v, float64(v)/elapsed)
		case kindGauge:
			val = fmt.Sprintf("%d", s.gauge.Value())
		case kindHistogram:
			h := s.hist
			unit := ""
			if h.scale != 1 {
				unit = "s"
			}
			val = fmt.Sprintf("n=%d mean=%s%s p50=%s%s p99=%s%s",
				h.Count(),
				formatFloat(round3(h.Mean())), unit,
				formatFloat(round3(h.Quantile(0.50))), unit,
				formatFloat(round3(h.Quantile(0.99))), unit)
		}
		rows = append(rows, [4]string{s.name, label, s.kind.String(), val})
	}
	var width [3]int
	for _, row := range rows {
		for i := 0; i < 3; i++ {
			if len(row[i]) > width[i] {
				width[i] = len(row[i])
			}
		}
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %-*s  %s\n",
			width[0], row[0], width[1], row[1], width[2], row[2], row[3]); err != nil {
			return err
		}
	}
	return nil
}

// round3 trims a float to 3 significant-ish decimals for the summary table.
func round3(v float64) float64 {
	if math.IsInf(v, 0) || v == 0 {
		return v
	}
	return math.Round(v*1e6) / 1e6
}
