package sched

// Figure2Pipeline builds the paper's running example (Figures 1 and 2):
//
//	prologue(); f(); g(); h(); i(); epilogue();
//
// becomes the DAG f -> {g, h} -> i, with every stage anytime at n = 2
// intermediate computations. f is the longest stage (it feeds everything),
// g and h are mid-weight siblings, and i is the light final stage that
// assembles each whole-application output O_wxyz.
//
// The relative costs make the paper's §IV-C2 tradeoff visible: f's first
// pass dominates the path to O1111, while i's pass latency bounds the gap
// between consecutive outputs.
func Figure2Pipeline() Pipeline {
	return Pipeline{Stages: []StageSpec{
		{Name: "f", PassCosts: []float64{40, 60}, ParallelFrac: 0.95},
		{Name: "g", PassCosts: []float64{12, 18}, ParallelFrac: 0.95, Deps: []int{0}},
		{Name: "h", PassCosts: []float64{10, 16}, ParallelFrac: 0.95, Deps: []int{0}},
		{Name: "i", PassCosts: []float64{8, 12}, ParallelFrac: 0.95, Deps: []int{1, 2}},
	}}
}

// HisteqPipeline models the four-stage histeq automaton of §IV-A2 with the
// relative per-pass costs this repository measures: a diffusive sampled
// histogram publishing six versions, two tiny non-anytime stages (CDF and
// LUT normalization), and a diffusive apply stage whose pass costs rival
// the histogram's. It is the pipeline whose non-anytime middle stages make
// histeq the evaluation's worst case.
func HisteqPipeline() Pipeline {
	histPasses := make([]float64, 6)
	for i := range histPasses {
		histPasses[i] = 10 // one sixth of the input sampled per publish
	}
	return Pipeline{Stages: []StageSpec{
		{Name: "hist", PassCosts: histPasses, ParallelFrac: 0.9},
		{Name: "cdf", PassCosts: []float64{0.5}, Deps: []int{0}},
		{Name: "lut", PassCosts: []float64{0.5}, Deps: []int{1}},
		{Name: "apply", PassCosts: []float64{12, 12, 12, 12}, ParallelFrac: 0.9, Deps: []int{2}},
	}}
}
