package sched

import (
	"fmt"
	"io"
	"strings"
)

// Timeline renders the simulated publish schedule as one row per stage —
// the Figure 2 layout: '·' marks an intermediate publish and '#' a stage's
// last publish, against a time axis of the given character width.
func (r Result) Timeline(w io.Writer, p Pipeline, width int) error {
	if width < 10 {
		width = 10
	}
	if len(r.Publishes) != len(p.Stages) {
		return fmt.Errorf("sched: result has %d stages, pipeline %d", len(r.Publishes), len(p.Stages))
	}
	span := r.Final
	for _, pubs := range r.Publishes {
		for _, t := range pubs {
			if t > span {
				span = t
			}
		}
	}
	if span <= 0 {
		span = 1
	}
	nameWidth := 0
	for _, s := range p.Stages {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "simulated timeline over %.2f units ('·' publish, '#' last):\n", span); err != nil {
		return err
	}
	for i, s := range p.Stages {
		cells := []rune(strings.Repeat(" ", width))
		pubs := r.Publishes[i]
		for j, t := range pubs {
			pos := int(t / span * float64(width-1))
			if pos < 0 {
				pos = 0
			}
			if pos >= width {
				pos = width - 1
			}
			mark := '·'
			if j == len(pubs)-1 {
				mark = '#'
			}
			if cells[pos] != '#' {
				cells[pos] = mark
			}
		}
		if _, err := fmt.Fprintf(w, "  %-*s |%s|\n", nameWidth, s.Name, string(cells)); err != nil {
			return err
		}
	}
	return nil
}
