package sched

import (
	"container/heap"
	"fmt"
	"math"
)

// Result is the outcome of simulating one allocation.
type Result struct {
	// Publishes[s] are the publish times of stage s's snapshots, in order.
	Publishes [][]float64
	// FirstOutput is the sink's first publish time — the paper's
	// "time to reach the first approximate output O1111".
	FirstOutput float64
	// Final is the sink's final publish time (the precise output).
	Final float64
	// MeanGap is the mean time between consecutive sink outputs — the
	// paper's "time between consecutive outputs O1111 and O1112".
	MeanGap float64
	// Work is the total executed pass cost across all stages (including
	// the redundant re-passes of asynchronous children) — the model's
	// energy proxy, invariant to how many workers sped each pass up.
	Work float64
}

// stageState is the simulator's per-stage bookkeeping.
type stageState struct {
	// consumed[d] is the parent-version vector of the inputs pinned for
	// the current (or last) pass cycle.
	consumed []uint64
	// consumedFinal reports whether every pinned parent input was final.
	consumedFinal bool
	pass          int  // next pass index within the current cycle
	running       bool // a pass is in flight
	done          bool
	version       uint64 // versions published so far
	final         bool   // published its final (precise) snapshot
}

type event struct {
	time  float64
	seq   int // tiebreaker for determinism
	stage int
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q *eventQueue) push(e event) { heap.Push(q, e) }
func (q *eventQueue) pop() (event, bool) {
	if q.Len() == 0 {
		return event{}, false
	}
	return heap.Pop(q).(event), true
}

// Simulate runs the pipeline under the given worker allocation (one entry
// per stage, each >= 1) and returns the publish schedule. The semantics
// mirror internal/core's asynchronous pipeline: a child pins the newest
// version of each parent, runs its pass sequence publishing after each
// pass, then re-pins if anything newer appeared; its last pass over final
// parent inputs publishes its own final snapshot.
func Simulate(p Pipeline, alloc []int) (Result, error) {
	if len(alloc) != len(p.Stages) {
		return Result{}, fmt.Errorf("sched: allocation has %d entries for %d stages", len(alloc), len(p.Stages))
	}
	for i, w := range alloc {
		if w < 1 {
			return Result{}, fmt.Errorf("sched: stage %q allocated %d workers", p.Stages[i].Name, w)
		}
	}
	return simulate(p, func(i, running int) int { return alloc[i] })
}

// SimulateDynamic models the fine-grained thread reassignment the paper
// leaves as future work ("it may be beneficial to reassign threads among
// stages dynamically", §IV-C2): at every pass start, the total worker
// budget is split evenly among the stages active at that instant, so an
// automaton whose pipeline has drained to a single stage hands that stage
// the whole machine.
func SimulateDynamic(p Pipeline, total int) (Result, error) {
	if total < 1 {
		return Result{}, fmt.Errorf("sched: dynamic budget %d must be positive", total)
	}
	return simulate(p, func(i, running int) int {
		w := total / (running + 1) // +1: the stage about to start
		if w < 1 {
			w = 1
		}
		return w
	})
}

// simulate is the engine shared by static and dynamic allocation;
// workersFor(i, running) returns the workers stage i receives when it
// starts a pass while `running` other stages have passes in flight.
func simulate(p Pipeline, workersFor func(i, running int) int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}

	n := len(p.Stages)
	states := make([]stageState, n)
	children := make([][]int, n)
	for i, s := range p.Stages {
		states[i] = stageState{consumed: make([]uint64, len(s.Deps))}
		for _, d := range s.Deps {
			children[d] = append(children[d], i)
		}
	}
	publishes := make([][]float64, n)
	var work float64

	var q eventQueue
	seq := 0
	runningCount := func() int {
		c := 0
		for i := range states {
			if states[i].running {
				c++
			}
		}
		return c
	}
	schedulePass := func(now float64, i int) {
		s := &states[i]
		spec := p.Stages[i]
		w := workersFor(i, runningCount())
		d := passTime(spec.PassCosts[s.pass], spec.ParallelFrac, w)
		work += spec.PassCosts[s.pass]
		s.running = true
		seq++
		q.push(event{time: now + d, seq: seq, stage: i})
	}

	// tryStart pins fresh inputs and begins a pass cycle if the stage is
	// idle and new input is available (sources always have "new input"
	// until their single cycle is done).
	tryStart := func(now float64, i int) {
		s := &states[i]
		if s.running || s.done {
			return
		}
		spec := p.Stages[i]
		if len(spec.Deps) == 0 {
			// Sources run exactly one pass cycle.
			schedulePass(now, i)
			return
		}
		fresh := false
		allHave := true
		allFinal := true
		for k, d := range spec.Deps {
			pv := states[d].version
			if pv == 0 {
				allHave = false
				break
			}
			if pv > s.consumed[k] {
				fresh = true
			}
			if !states[d].final {
				allFinal = false
			}
		}
		if !allHave || !fresh {
			return
		}
		for k, d := range spec.Deps {
			s.consumed[k] = states[d].version
		}
		s.consumedFinal = allFinal
		s.pass = 0
		schedulePass(now, i)
	}

	// Seed the sources.
	for i, s := range p.Stages {
		if len(s.Deps) == 0 {
			tryStart(0, i)
		}
	}

	for {
		e, ok := q.pop()
		if !ok {
			break
		}
		i := e.stage
		s := &states[i]
		spec := p.Stages[i]
		s.running = false
		s.pass++
		s.version++
		lastPass := s.pass == len(spec.PassCosts)
		isSource := len(spec.Deps) == 0
		if lastPass && (isSource || s.consumedFinal) {
			s.final = true
			s.done = true
		}
		publishes[i] = append(publishes[i], e.time)

		// Wake children on the new version.
		for _, ch := range children[i] {
			tryStart(e.time, ch)
		}
		if s.done {
			continue
		}
		if !lastPass {
			schedulePass(e.time, i)
			continue
		}
		// Cycle complete on non-final inputs: re-pin if anything newer.
		tryStart(e.time, i)
	}

	sink := p.Sink()
	if states[sink].version == 0 || !states[sink].final {
		return Result{}, fmt.Errorf("sched: sink %q never reached its final output (deadlocked pipeline?)", p.Stages[sink].Name)
	}
	res := Result{Publishes: publishes, Work: work}
	sp := publishes[sink]
	res.FirstOutput = sp[0]
	res.Final = sp[len(sp)-1]
	if len(sp) > 1 {
		var gaps float64
		for i := 1; i < len(sp); i++ {
			gaps += sp[i] - sp[i-1]
		}
		res.MeanGap = gaps / float64(len(sp)-1)
	} else {
		res.MeanGap = math.Inf(1)
	}
	return res, nil
}
