package sched

import (
	"fmt"
	"sort"
)

// Policy allocates a budget of workers across a pipeline's stages.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Allocate returns one worker count per stage; counts are >= 1 and sum
	// to at most total.
	Allocate(p Pipeline, total int) ([]int, error)
}

// Equal splits the budget evenly — the naive baseline.
type Equal struct{}

// Name implements Policy.
func (Equal) Name() string { return "equal" }

// Allocate implements Policy.
func (Equal) Allocate(p Pipeline, total int) ([]int, error) {
	return spread(p, total, func(i int) float64 { return 1 })
}

// Proportional allocates in proportion to total stage cost — the
// conventional pipeline-balancing heuristic the paper notes "may not be
// suitable for the automaton pipeline".
type Proportional struct{}

// Name implements Policy.
func (Proportional) Name() string { return "proportional" }

// Allocate implements Policy.
func (Proportional) Allocate(p Pipeline, total int) ([]int, error) {
	return spread(p, total, p.TotalCost)
}

// FirstOutput targets the time to the first whole-application output: it
// weights stages by the cost of their FIRST pass, which is the critical
// path to O1111 ("we need to allocate more threads to the longest stage
// f", §IV-C2).
type FirstOutput struct{}

// Name implements Policy.
func (FirstOutput) Name() string { return "first-output" }

// Allocate implements Policy.
func (FirstOutput) Allocate(p Pipeline, total int) ([]int, error) {
	return spread(p, total, func(i int) float64 { return p.Stages[i].PassCosts[0] })
}

// OutputRate targets the time between consecutive outputs: it weights the
// sink stage, whose pass latency bounds the inter-output gap ("we need to
// allocate more threads to the final stage i", §IV-C2).
type OutputRate struct{}

// Name implements Policy.
func (OutputRate) Name() string { return "output-rate" }

// Allocate implements Policy.
func (OutputRate) Allocate(p Pipeline, total int) ([]int, error) {
	sink := p.Sink()
	return spread(p, total, func(i int) float64 {
		if i == sink {
			return float64(total) // dominate the weighting
		}
		return 1
	})
}

// spread distributes total workers by weight, guaranteeing one worker per
// stage, with deterministic largest-remainder rounding.
func spread(p Pipeline, total int, weight func(i int) float64) ([]int, error) {
	n := len(p.Stages)
	if total < n {
		return nil, fmt.Errorf("sched: budget %d below one worker per stage (%d stages)", total, n)
	}
	alloc := make([]int, n)
	for i := range alloc {
		alloc[i] = 1
	}
	extra := total - n
	if extra == 0 {
		return alloc, nil
	}
	var sum float64
	ws := make([]float64, n)
	for i := range ws {
		w := weight(i)
		if w < 0 {
			w = 0
		}
		ws[i] = w
		sum += w
	}
	if sum == 0 {
		return alloc, nil
	}
	type frac struct {
		i   int
		rem float64
	}
	fracs := make([]frac, n)
	assigned := 0
	for i := range ws {
		share := float64(extra) * ws[i] / sum
		whole := int(share)
		alloc[i] += whole
		assigned += whole
		fracs[i] = frac{i: i, rem: share - float64(whole)}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].i < fracs[b].i
	})
	for k := 0; assigned < extra; k++ {
		alloc[fracs[k%n].i]++
		assigned++
	}
	return alloc, nil
}

// Comparison is one policy's simulated outcome on a pipeline.
type Comparison struct {
	Policy      string
	Allocation  []int
	FirstOutput float64
	MeanGap     float64
	Final       float64
}

// Compare simulates every policy on the pipeline with the given worker
// budget.
func Compare(p Pipeline, total int, policies []Policy) ([]Comparison, error) {
	out := make([]Comparison, 0, len(policies))
	for _, pol := range policies {
		alloc, err := pol.Allocate(p, total)
		if err != nil {
			return nil, fmt.Errorf("sched: %s: %w", pol.Name(), err)
		}
		res, err := Simulate(p, alloc)
		if err != nil {
			return nil, fmt.Errorf("sched: %s: %w", pol.Name(), err)
		}
		out = append(out, Comparison{
			Policy:      pol.Name(),
			Allocation:  alloc,
			FirstOutput: res.FirstOutput,
			MeanGap:     res.MeanGap,
			Final:       res.Final,
		})
	}
	return out, nil
}

// DefaultPolicies are the four allocation strategies discussed in §IV-C2.
func DefaultPolicies() []Policy {
	return []Policy{Equal{}, Proportional{}, FirstOutput{}, OutputRate{}}
}
