// Package sched studies the pipeline-scheduling problem the paper opens in
// §IV-C2: given an architecture with limited hardware threads, how many
// workers should each computation stage of an anytime automaton receive?
//
// The paper observes a tradeoff on its Figure 2 pipeline (stages f, g, h, i
// with two intermediate computations each): to minimize the time to the
// FIRST approximate output O1111, give workers to the longest stage (f);
// to minimize the time BETWEEN consecutive outputs, give workers to the
// final stage (i). Correctness is unaffected either way — scheduling is
// "merely an optimization problem".
//
// Wall-clock experiments cannot show this on a machine without real
// parallelism, so the package provides a deterministic discrete-event
// simulator of an asynchronous anytime pipeline: stages execute their
// intermediate computations (passes), publish versioned snapshots, and
// children re-run their pass sequences on whichever parent versions are
// current — the same semantics as internal/core, with time advanced by a
// cost model instead of a CPU. Allocation policies are evaluated against
// the simulator.
package sched

import (
	"fmt"
	"math"
)

// StageSpec models one anytime computation stage.
type StageSpec struct {
	// Name labels the stage.
	Name string
	// PassCosts are the sequential costs of the stage's intermediate
	// computations f_1 … f_n, in arbitrary time units at one worker.
	PassCosts []float64
	// ParallelFrac is the fraction of each pass that scales with allocated
	// workers (Amdahl's law); the remainder is sequential. In [0, 1].
	ParallelFrac float64
	// Deps are the indices of the stages this stage consumes (its parents
	// in the DAG). Empty for source stages.
	Deps []int
}

// Pipeline is a DAG of anytime stages. Stages must be topologically
// ordered: every dependency index is smaller than the dependent's index.
type Pipeline struct {
	Stages []StageSpec
}

// Validate checks structural soundness.
func (p Pipeline) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("sched: empty pipeline")
	}
	for i, s := range p.Stages {
		if len(s.PassCosts) == 0 {
			return fmt.Errorf("sched: stage %q has no passes", s.Name)
		}
		for _, c := range s.PassCosts {
			if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("sched: stage %q has invalid pass cost %v", s.Name, c)
			}
		}
		if s.ParallelFrac < 0 || s.ParallelFrac > 1 || math.IsNaN(s.ParallelFrac) {
			return fmt.Errorf("sched: stage %q parallel fraction %v out of [0,1]", s.Name, s.ParallelFrac)
		}
		for _, d := range s.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("sched: stage %q dependency %d is not an earlier stage", s.Name, d)
			}
		}
	}
	return nil
}

// TotalCost returns the sum of all pass costs of stage i.
func (p Pipeline) TotalCost(i int) float64 {
	var sum float64
	for _, c := range p.Stages[i].PassCosts {
		sum += c
	}
	return sum
}

// Sink returns the index of the final stage (the one no other stage
// depends on); with several candidates it returns the last.
func (p Pipeline) Sink() int {
	depended := make([]bool, len(p.Stages))
	for _, s := range p.Stages {
		for _, d := range s.Deps {
			depended[d] = true
		}
	}
	sink := len(p.Stages) - 1
	for i := len(p.Stages) - 1; i >= 0; i-- {
		if !depended[i] {
			return i
		}
	}
	return sink
}

// passTime is the modeled duration of one pass of cost c on w workers with
// parallel fraction pf.
func passTime(c, pf float64, w int) float64 {
	if w < 1 {
		w = 1
	}
	return c * ((1 - pf) + pf/float64(w))
}
