package sched

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPipelineValidate(t *testing.T) {
	bad := []Pipeline{
		{},
		{Stages: []StageSpec{{Name: "s"}}}, // no passes
		{Stages: []StageSpec{{Name: "s", PassCosts: []float64{0}}}},                  // zero cost
		{Stages: []StageSpec{{Name: "s", PassCosts: []float64{1}, ParallelFrac: 2}}}, // bad frac
		{Stages: []StageSpec{{Name: "s", PassCosts: []float64{1}, Deps: []int{0}}}},  // self dep
		{Stages: []StageSpec{{Name: "s", PassCosts: []float64{1}, Deps: []int{5}}}},  // forward dep
		{Stages: []StageSpec{{Name: "s", PassCosts: []float64{math.NaN()}}}},         // NaN cost
		{Stages: []StageSpec{{Name: "s", PassCosts: []float64{1}, Deps: []int{-1}}}}, // negative dep
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pipeline %d validated", i)
		}
	}
	if err := Figure2Pipeline().Validate(); err != nil {
		t.Errorf("Figure 2 pipeline invalid: %v", err)
	}
}

func TestSink(t *testing.T) {
	if got := Figure2Pipeline().Sink(); got != 3 {
		t.Errorf("Sink = %d, want 3 (stage i)", got)
	}
	single := Pipeline{Stages: []StageSpec{{Name: "only", PassCosts: []float64{1}}}}
	if got := single.Sink(); got != 0 {
		t.Errorf("single-stage sink = %d", got)
	}
}

func TestPassTime(t *testing.T) {
	// Fully sequential: workers change nothing.
	if passTime(10, 0, 8) != 10 {
		t.Error("sequential pass scaled with workers")
	}
	// Fully parallel: ideal speedup.
	if passTime(10, 1, 5) != 2 {
		t.Error("parallel pass did not scale ideally")
	}
	// Defensive clamp.
	if passTime(10, 1, 0) != 10 {
		t.Error("zero workers not clamped")
	}
}

// TestSimulateSourceOnly: a single source stage's publish times are the
// running sums of its pass times.
func TestSimulateSourceOnly(t *testing.T) {
	p := Pipeline{Stages: []StageSpec{
		{Name: "f", PassCosts: []float64{3, 5, 7}, ParallelFrac: 1},
	}}
	res, err := Simulate(p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 8, 15}
	for i, w := range want {
		if math.Abs(res.Publishes[0][i]-w) > 1e-9 {
			t.Errorf("publish %d at %v, want %v", i, res.Publishes[0][i], w)
		}
	}
	if res.FirstOutput != 3 || res.Final != 15 {
		t.Errorf("first %v final %v", res.FirstOutput, res.Final)
	}
	if math.Abs(res.MeanGap-6) > 1e-9 { // (5+7)/2
		t.Errorf("mean gap %v, want 6", res.MeanGap)
	}
	// Workers halve everything at ParallelFrac 1.
	res2, err := Simulate(p, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Final-7.5) > 1e-9 {
		t.Errorf("2-worker final %v, want 7.5", res2.Final)
	}
}

// TestSimulateTwoStageHandChecked walks the asynchronous two-stage
// semantics by hand: f publishes at 10 (approx) and 30 (final); g (passes
// 4, 6) starts at 10, publishes 14 and 20, re-pins the final input at 20,
// publishes 24 and 30+... — verify against the simulator.
func TestSimulateTwoStageHandChecked(t *testing.T) {
	p := Pipeline{Stages: []StageSpec{
		{Name: "f", PassCosts: []float64{10, 20}},
		{Name: "g", PassCosts: []float64{4, 6}, Deps: []int{0}},
	}}
	res, err := Simulate(p, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// f: 10 (v1), 30 (v2 final).
	// g: pins v1 at 10 -> publishes 14, 20. Cycle ends at 20; no fresh
	// input until 30 -> idle. Pins v2 at 30 -> publishes 34, 40 (final).
	wantG := []float64{14, 20, 34, 40}
	if len(res.Publishes[1]) != len(wantG) {
		t.Fatalf("g published %v, want %v", res.Publishes[1], wantG)
	}
	for i, w := range wantG {
		if math.Abs(res.Publishes[1][i]-w) > 1e-9 {
			t.Errorf("g publish %d at %v, want %v", i, res.Publishes[1][i], w)
		}
	}
	if res.FirstOutput != 14 || res.Final != 40 {
		t.Errorf("first %v final %v", res.FirstOutput, res.Final)
	}
}

// TestSimulateSkipsStaleVersions: a slow child must skip intermediate
// parent versions, pinning only the newest — the async-pipeline semantics.
func TestSimulateSkipsStaleVersions(t *testing.T) {
	p := Pipeline{Stages: []StageSpec{
		{Name: "f", PassCosts: []float64{1, 1, 1, 1, 1, 20}},
		{Name: "g", PassCosts: []float64{50}, Deps: []int{0}},
	}}
	res, err := Simulate(p, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// g pins v1 at t=1, runs until 51 (f final at 25 meanwhile), then runs
	// exactly one more pass on the final version: 2 publishes total.
	if len(res.Publishes[1]) != 2 {
		t.Errorf("g published %d times, want 2 (skip stale)", len(res.Publishes[1]))
	}
}

func TestSimulateDiamondReachesFinal(t *testing.T) {
	res, err := Simulate(Figure2Pipeline(), []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final <= res.FirstOutput {
		t.Errorf("final %v not after first %v", res.Final, res.FirstOutput)
	}
	for s, pubs := range res.Publishes {
		if len(pubs) == 0 {
			t.Errorf("stage %d never published", s)
		}
		for i := 1; i < len(pubs); i++ {
			if pubs[i] < pubs[i-1] {
				t.Errorf("stage %d publish times not monotone: %v", s, pubs)
			}
		}
	}
}

func TestSimulateValidatesAllocation(t *testing.T) {
	p := Figure2Pipeline()
	if _, err := Simulate(p, []int{1, 1}); err == nil {
		t.Error("short allocation accepted")
	}
	if _, err := Simulate(p, []int{1, 1, 0, 1}); err == nil {
		t.Error("zero workers accepted")
	}
}

// TestSimulateFinalAlwaysReached: for arbitrary random chains, the sink
// always reaches a final output (no deadlock, no livelock).
func TestSimulateFinalAlwaysReached(t *testing.T) {
	f := func(costs []uint8, depth uint8) bool {
		n := int(depth)%4 + 1
		p := Pipeline{}
		for i := 0; i < n; i++ {
			passes := 1
			if len(costs) > 0 {
				passes = int(costs[i%len(costs)])%3 + 1
			}
			pc := make([]float64, passes)
			for j := range pc {
				pick := 1.0
				if len(costs) > 0 {
					pick = float64(costs[(i*3+j)%len(costs)])/16 + 0.5
				}
				pc[j] = pick
			}
			spec := StageSpec{Name: "s", PassCosts: pc, ParallelFrac: 0.5}
			if i > 0 {
				spec.Deps = []int{i - 1}
			}
			p.Stages = append(p.Stages, spec)
		}
		alloc := make([]int, n)
		for i := range alloc {
			alloc[i] = 1 + i%3
		}
		res, err := Simulate(p, alloc)
		return err == nil && res.Final >= res.FirstOutput && res.FirstOutput > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMoreWorkersNeverHurtSource: with parallel work, adding workers to a
// single stage cannot increase its final time.
func TestMoreWorkersNeverHurtSource(t *testing.T) {
	p := Pipeline{Stages: []StageSpec{{Name: "f", PassCosts: []float64{10, 10}, ParallelFrac: 0.8}}}
	prev := math.Inf(1)
	for w := 1; w <= 8; w++ {
		res, err := Simulate(p, []int{w})
		if err != nil {
			t.Fatal(err)
		}
		if res.Final > prev+1e-9 {
			t.Errorf("final time rose from %v to %v at %d workers", prev, res.Final, w)
		}
		prev = res.Final
	}
}

func TestSpreadPolicyBasics(t *testing.T) {
	p := Figure2Pipeline()
	for _, pol := range DefaultPolicies() {
		alloc, err := pol.Allocate(p, 12)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		total := 0
		for i, w := range alloc {
			if w < 1 {
				t.Errorf("%s gave stage %d zero workers", pol.Name(), i)
			}
			total += w
		}
		if total != 12 {
			t.Errorf("%s allocated %d of 12 workers: %v", pol.Name(), total, alloc)
		}
	}
	if _, err := (Equal{}).Allocate(p, 2); err == nil {
		t.Error("budget below one per stage accepted")
	}
}

func TestFirstOutputPolicyFavorsLongestFirstPass(t *testing.T) {
	p := Figure2Pipeline()
	alloc, err := (FirstOutput{}).Allocate(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Stage f (index 0) has the costliest first pass and must get the most
	// workers.
	for i := 1; i < len(alloc); i++ {
		if alloc[i] > alloc[0] {
			t.Errorf("first-output policy gave stage %d (%d) more than f (%d)", i, alloc[i], alloc[0])
		}
	}
}

func TestOutputRatePolicyFavorsSink(t *testing.T) {
	p := Figure2Pipeline()
	alloc, err := (OutputRate{}).Allocate(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	sink := p.Sink()
	for i := range alloc {
		if i != sink && alloc[i] > alloc[sink] {
			t.Errorf("output-rate policy gave stage %d (%d) more than the sink (%d)", i, alloc[i], alloc[sink])
		}
	}
}

// TestPaperTradeoffOnFigure2 is the §IV-C2 claim itself: on the Figure 2
// pipeline, the first-output policy reaches the first whole-application
// output no later than the output-rate policy, and the output-rate policy
// achieves a mean inter-output gap no larger than the first-output policy.
func TestPaperTradeoffOnFigure2(t *testing.T) {
	p := Figure2Pipeline()
	rows, err := Compare(p, 16, DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Comparison{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	fo := byName["first-output"]
	or := byName["output-rate"]
	if fo.FirstOutput > or.FirstOutput+1e-9 {
		t.Errorf("first-output policy TTFO %v worse than output-rate %v", fo.FirstOutput, or.FirstOutput)
	}
	if or.MeanGap > fo.MeanGap+1e-9 {
		t.Errorf("output-rate policy gap %v worse than first-output %v", or.MeanGap, fo.MeanGap)
	}
	// And the tradeoff is real: the two optima are achieved by different
	// policies (strict inequality in at least one direction).
	if !(fo.FirstOutput < or.FirstOutput-1e-9 || or.MeanGap < fo.MeanGap-1e-9) {
		t.Errorf("no tradeoff visible: fo=%+v or=%+v", fo, or)
	}
}

func TestCompareReportsAllPolicies(t *testing.T) {
	rows, err := Compare(Figure2Pipeline(), 8, DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Final <= 0 || r.FirstOutput <= 0 {
			t.Errorf("%s: degenerate times %+v", r.Policy, r)
		}
	}
}

// TestSimulateDynamicBeatsStaticEqual: handing the whole budget to whatever
// is running must not be slower than a static equal split, and on the
// Figure 2 pipeline it should strictly improve time-to-first-output (only
// f runs at the start, so it gets every worker).
func TestSimulateDynamicBeatsStaticEqual(t *testing.T) {
	p := Figure2Pipeline()
	const budget = 16
	equalAlloc, err := (Equal{}).Allocate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Simulate(p, equalAlloc)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := SimulateDynamic(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.FirstOutput >= static.FirstOutput {
		t.Errorf("dynamic TTFO %v not better than static equal %v", dynamic.FirstOutput, static.FirstOutput)
	}
	if dynamic.Final > static.Final+1e-9 {
		t.Errorf("dynamic final %v worse than static equal %v", dynamic.Final, static.Final)
	}
}

func TestSimulateDynamicValidation(t *testing.T) {
	if _, err := SimulateDynamic(Figure2Pipeline(), 0); err == nil {
		t.Error("zero budget accepted")
	}
}

// TestWorkAccounting: a single source's work equals the sum of its pass
// costs, independent of workers; an async child adds its re-pass work.
func TestWorkAccounting(t *testing.T) {
	src := Pipeline{Stages: []StageSpec{{Name: "f", PassCosts: []float64{3, 5}, ParallelFrac: 1}}}
	for _, w := range []int{1, 4} {
		res, err := Simulate(src, []int{w})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Work-8) > 1e-9 {
			t.Errorf("workers=%d: work %v, want 8", w, res.Work)
		}
	}
	two := Pipeline{Stages: []StageSpec{
		{Name: "f", PassCosts: []float64{10, 20}},
		{Name: "g", PassCosts: []float64{4, 6}, Deps: []int{0}},
	}}
	res, err := Simulate(two, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// From TestSimulateTwoStageHandChecked: g runs two full cycles.
	want := 10.0 + 20 + 2*(4+6)
	if math.Abs(res.Work-want) > 1e-9 {
		t.Errorf("pipeline work %v, want %v", res.Work, want)
	}
}

func TestResultTimeline(t *testing.T) {
	p := Figure2Pipeline()
	res, err := Simulate(p, []int{2, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.Timeline(&buf, p, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"f", "g", "h", "i"} {
		if !strings.Contains(out, name+" ") && !strings.Contains(out, name+"|") {
			t.Errorf("timeline missing stage %s:\n%s", name, out)
		}
	}
	rows := out[strings.IndexByte(out, '\n')+1:] // skip the legend line
	if strings.Count(rows, "#") != 4 {
		t.Errorf("want one last-mark per stage:\n%s", out)
	}
	bad := Result{Publishes: [][]float64{{1}}}
	if err := bad.Timeline(&buf, p, 60); err == nil {
		t.Error("mismatched result accepted")
	}
}

// TestHisteqPipelineShape: the modeled histeq pipeline must validate, and —
// like the measured application — reach its precise output well after the
// equivalent of its baseline cost (the non-anytime middle stages force
// repeated apply cycles).
func TestHisteqPipelineShape(t *testing.T) {
	p := HisteqPipeline()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(p, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline-equivalent work: one full histogram + cdf + lut + one apply
	// cycle.
	baseline := p.TotalCost(0) + p.TotalCost(1) + p.TotalCost(2) + p.TotalCost(3)
	if res.Final <= baseline {
		t.Errorf("histeq model reached precise at %v, within its baseline %v; the non-anytime penalty vanished", res.Final, baseline)
	}
	// But the first whole-application output arrives before one baseline.
	if res.FirstOutput >= baseline {
		t.Errorf("first output at %v, after a full baseline %v; early availability vanished", res.FirstOutput, baseline)
	}
}
