// Package dwt53 implements the discrete-wavelet-transform benchmark of the
// paper's evaluation (§IV-A2): a discretely-sampled wavelet transform on an
// image, using the reversible CDF 5/3 integer lifting scheme. As in the
// paper, the forward transform is approximated and the inverse transform is
// executed precisely; accuracy is measured on the inverted output relative
// to the original image.
//
// The anytime automaton consists of a single iterative stage that employs
// loop perforation (paper §III-B1) on the coefficient loops: with stride s
// only every s-th predict/update step is computed, skipped detail
// coefficients are left zero and skipped approximations keep the raw even
// sample. The schedule re-executes the transform with progressively smaller
// strides, ending at stride 1 — the precise, perfectly reversible
// transform. This is exactly the redundant-work iterative shape the paper
// contrasts with diffusive sampling (Figure 13's steep curve).
package dwt53

// fwdLift1D applies one level of the perforated CDF 5/3 forward lifting to
// the n samples read through src (a strided view), writing packed
// [approx | detail] output through dst. stride perforates the coefficient
// loops; stride 1 is the precise reversible transform.
//
// The signal splits into na = ceil(n/2) even (approximation) and nd =
// floor(n/2) odd (detail) samples. Out-of-range neighbors reflect
// symmetrically.
func fwdLift1D(src func(int) int32, dst func(int, int32), n, stride int) {
	if n <= 0 {
		return
	}
	nd := n / 2
	na := n - nd
	d := make([]int32, nd)
	for i := 0; i < nd; i++ {
		if i%stride != 0 {
			continue // perforated: detail stays zero
		}
		left := src(2 * i)
		right := left
		if 2*i+2 <= n-1 {
			right = src(2*i + 2)
		}
		d[i] = src(2*i+1) - ((left + right) >> 1)
	}
	for i := 0; i < na; i++ {
		even := src(2 * i)
		if i%stride != 0 {
			dst(i, even) // perforated: approximation keeps the raw sample
			continue
		}
		dl, dr := liftNeighbors(d, i, nd)
		dst(i, even+((dl+dr+2)>>2))
	}
	for i := 0; i < nd; i++ {
		dst(na+i, d[i])
	}
}

// invLift1D exactly inverts fwdLift1D at stride 1: it reads packed
// [approx | detail] samples through src and writes the reconstructed signal
// through dst.
func invLift1D(src func(int) int32, dst func(int, int32), n int) {
	if n <= 0 {
		return
	}
	nd := n / 2
	na := n - nd
	d := make([]int32, nd)
	for i := 0; i < nd; i++ {
		d[i] = src(na + i)
	}
	even := make([]int32, na)
	for i := 0; i < na; i++ {
		dl, dr := liftNeighbors(d, i, nd)
		even[i] = src(i) - ((dl + dr + 2) >> 2)
	}
	for i := 0; i < na; i++ {
		dst(2*i, even[i])
	}
	for i := 0; i < nd; i++ {
		left := even[i]
		right := left
		if i+1 <= na-1 {
			right = even[i+1]
		}
		dst(2*i+1, d[i]+((left+right)>>1))
	}
}

// liftNeighbors returns the detail neighbors (d[i-1], d[i]) used by the
// update step, with symmetric reflection at the borders.
func liftNeighbors(d []int32, i, nd int) (dl, dr int32) {
	if nd == 0 {
		return 0, 0
	}
	if i-1 >= 0 {
		dl = d[min(i-1, nd-1)]
	} else {
		dl = d[0]
	}
	if i <= nd-1 {
		dr = d[i]
	} else {
		dr = d[nd-1]
	}
	return dl, dr
}
