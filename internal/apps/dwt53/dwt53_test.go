package dwt53

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"anytime/internal/metrics"
	"anytime/internal/perforate"
	"anytime/internal/pix"
)

func testImage(t *testing.T, w, h int) *pix.Image {
	t.Helper()
	im, err := pix.SyntheticGray(w, h, 29)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestConfigValidation(t *testing.T) {
	in := testImage(t, 16, 16)
	bad := []Config{
		{Levels: -1},
		{Workers: -2},
		{Strides: perforate.Schedule{4, 2}},    // missing final 1
		{Strides: perforate.Schedule{2, 2, 1}}, // not strictly decreasing
	}
	for _, cfg := range bad {
		if _, err := Precise(in, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		if _, err := New(in, cfg); err == nil {
			t.Errorf("config %+v accepted by New", cfg)
		}
	}
	rgb := pix.MustNew(4, 4, 3)
	if _, err := Precise(rgb, Config{}); err == nil {
		t.Error("RGB input accepted")
	}
	if _, err := Forward(in, Config{}, 0); err == nil {
		t.Error("stride 0 accepted")
	}
}

// TestLift1DRoundTrip: the 1D lifting at stride 1 is exactly invertible for
// arbitrary signals and lengths, including odd lengths and extreme values.
func TestLift1DRoundTrip(t *testing.T) {
	f := func(raw []int16, pad uint8) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		src := make([]int32, n)
		for i, v := range raw {
			src[i] = int32(v)
		}
		packed := make([]int32, n)
		fwdLift1D(func(i int) int32 { return src[i] },
			func(i int, v int32) { packed[i] = v }, n, 1)
		rec := make([]int32, n)
		invLift1D(func(i int) int32 { return packed[i] },
			func(i int, v int32) { rec[i] = v }, n)
		for i := range src {
			if rec[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLift1DTinySignals(t *testing.T) {
	for _, src := range [][]int32{{5}, {5, -3}, {1, 2, 3}, {9, 9, 9, 9}} {
		n := len(src)
		packed := make([]int32, n)
		fwdLift1D(func(i int) int32 { return src[i] },
			func(i int, v int32) { packed[i] = v }, n, 1)
		rec := make([]int32, n)
		invLift1D(func(i int) int32 { return packed[i] },
			func(i int, v int32) { rec[i] = v }, n)
		for i := range src {
			if rec[i] != src[i] {
				t.Fatalf("signal %v: rec %v", src, rec)
			}
		}
	}
}

// TestForwardInverseIdentity: the precise 2D multi-level transform is
// losslessly invertible for arbitrary image sizes.
func TestForwardInverseIdentity(t *testing.T) {
	f := func(rawW, rawH uint8, levels uint8) bool {
		w := int(rawW)%40 + 1
		h := int(rawH)%40 + 1
		cfg := Config{Levels: int(levels)%4 + 1}
		in, err := pix.SyntheticGray(w, h, uint64(w*h))
		if err != nil {
			return false
		}
		got, err := Precise(in, cfg)
		if err != nil {
			return false
		}
		return got.Equal(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestForwardCompacts(t *testing.T) {
	// A smooth image's detail coefficients must be small: check that the
	// top-left (approximation) region carries most of the energy.
	in := testImage(t, 64, 64)
	coef, err := Forward(in, Config{Levels: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var approxEnergy, detailEnergy float64
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			e := float64(coef.Gray(x, y)) * float64(coef.Gray(x, y))
			if x < 32 && y < 32 {
				approxEnergy += e
			} else {
				detailEnergy += e
			}
		}
	}
	if approxEnergy < 10*detailEnergy {
		t.Errorf("energy not compacted: approx %v detail %v", approxEnergy, detailEnergy)
	}
}

func TestPerforatedStridesImproveMonotonically(t *testing.T) {
	in := testImage(t, 64, 64)
	cfg := Config{}
	var prev float64 = math.Inf(-1)
	for _, stride := range []int{8, 4, 2} {
		coef, err := Forward(in, cfg, stride)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Inverse(coef, cfg)
		if err != nil {
			t.Fatal(err)
		}
		db, err := metrics.SNR(in.Pix, rec.Pix)
		if err != nil {
			t.Fatal(err)
		}
		if db < prev {
			t.Errorf("stride %d SNR %v dB below coarser stride's %v dB", stride, db, prev)
		}
		prev = db
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	in := testImage(t, 48, 40)
	a, err := Forward(in, Config{Workers: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Forward(in, Config{Workers: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("parallel forward differs from serial")
	}
}

func TestAutomatonFinalEqualsInput(t *testing.T) {
	in := testImage(t, 64, 64)
	for _, workers := range []int{1, 4} {
		run, err := New(in, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, ok := run.Out.Latest()
		if !ok || !snap.Final {
			t.Fatal("no final output")
		}
		if !snap.Value.Equal(in) {
			t.Errorf("workers=%d: final reconstruction differs from input (lossless 5/3 violated)", workers)
		}
	}
}

func TestAutomatonPassesReportStrides(t *testing.T) {
	in := testImage(t, 32, 32)
	var strides []int
	var snrs []float64
	run, err := New(in, Config{OnPass: func(stride int, img *pix.Image) {
		strides = append(strides, stride)
		db, err := metrics.SNR(in.Pix, img.Pix)
		if err != nil {
			t.Error(err)
			return
		}
		snrs = append(snrs, db)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(strides) == 0 {
		t.Fatal("no passes observed")
	}
	if strides[len(strides)-1] != 1 {
		t.Errorf("last pass stride = %d, want 1", strides[len(strides)-1])
	}
	if !math.IsInf(snrs[len(snrs)-1], 1) {
		t.Errorf("final pass SNR = %v, want +Inf", snrs[len(snrs)-1])
	}
	// The async consumer may skip intermediate passes, but observed strides
	// must be decreasing.
	for i := 1; i < len(strides); i++ {
		if strides[i] >= strides[i-1] {
			t.Errorf("strides not decreasing: %v", strides)
		}
	}
}

func TestTinyImages(t *testing.T) {
	for _, dim := range [][2]int{{1, 1}, {2, 2}, {3, 1}, {1, 5}, {5, 7}} {
		in := testImage(t, dim[0], dim[1])
		run, err := New(in, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, _ := run.Out.Latest()
		if !snap.Value.Equal(in) {
			t.Errorf("%v: final != input", dim)
		}
	}
}
