package dwt53

import (
	"testing"

	"anytime/internal/pix"
)

// FuzzLift1DRoundTrip: the stride-1 lifting must invert exactly for any
// byte-derived signal.
func FuzzLift1DRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data)
		if n == 0 || n > 4096 {
			return
		}
		src := make([]int32, n)
		for i, b := range data {
			src[i] = int32(int8(b)) * 257 // exercise negatives and magnitude
		}
		packed := make([]int32, n)
		fwdLift1D(func(i int) int32 { return src[i] },
			func(i int, v int32) { packed[i] = v }, n, 1)
		rec := make([]int32, n)
		invLift1D(func(i int) int32 { return packed[i] },
			func(i int, v int32) { rec[i] = v }, n)
		for i := range src {
			if rec[i] != src[i] {
				t.Fatalf("round trip failed at %d: %d != %d (n=%d)", i, rec[i], src[i], n)
			}
		}
	})
}

// FuzzForwardInverse2D: the full 2D multi-level transform must be lossless
// at stride 1 for arbitrary small geometries and contents.
func FuzzForwardInverse2D(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(2), []byte{10, 200, 30})
	f.Add(uint8(1), uint8(1), uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, rw, rh, rl uint8, data []byte) {
		w := int(rw)%32 + 1
		h := int(rh)%32 + 1
		levels := int(rl)%4 + 1
		im := MustImage(w, h, data)
		cfg := Config{Levels: levels}
		got, err := Precise(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(im) {
			t.Fatalf("%dx%d levels=%d: forward+inverse not identity", w, h, levels)
		}
	})
}

// MustImage builds a grayscale image filled from data for fuzzing.
func MustImage(w, h int, data []byte) *pix.Image {
	im := pix.MustNew(w, h, 1)
	for i := range im.Pix {
		if len(data) > 0 {
			im.Pix[i] = int32(data[i%len(data)])
		}
	}
	return im
}
