package dwt53

import (
	"fmt"
	"sync"

	"anytime/internal/core"
	"anytime/internal/par"
	"anytime/internal/perforate"
	"anytime/internal/pix"
)

// Config parameterizes the baseline and the automaton.
type Config struct {
	// Levels is the number of wavelet decomposition levels. Default 3.
	Levels int
	// Strides is the perforation schedule for the iterative stage; it must
	// strictly decrease and end at 1. Default {8, 4, 2, 1}.
	Strides perforate.Schedule
	// Workers is the number of row/column workers. Default 1.
	Workers int
	// OnPass, if non-nil, is invoked after each forward pass with the
	// stride used and the inverse-transformed image (what a viewer would
	// see if the automaton were stopped there). It runs on the inverse
	// stage's goroutine.
	OnPass func(stride int, img *pix.Image)
}

func (cfg Config) withDefaults() Config {
	if cfg.Levels == 0 {
		cfg.Levels = 3
	}
	if cfg.Strides == nil {
		cfg.Strides = perforate.Schedule{8, 4, 2, 1}
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	return cfg
}

func (cfg Config) validate(in *pix.Image) error {
	if in.C != 1 {
		return fmt.Errorf("dwt53: input must be grayscale, got %d channels", in.C)
	}
	if cfg.Levels < 1 {
		return fmt.Errorf("dwt53: levels %d must be positive", cfg.Levels)
	}
	if cfg.Workers < 1 {
		return fmt.Errorf("dwt53: workers %d must be positive", cfg.Workers)
	}
	return cfg.Strides.Validate()
}

// regionSizes returns the (w, h) of each decomposition level's region,
// level 0 first.
func regionSizes(w, h, levels int) [][2]int {
	out := make([][2]int, 0, levels)
	for l := 0; l < levels && w >= 2 && h >= 2; l++ {
		out = append(out, [2]int{w, h})
		w = (w + 1) / 2
		h = (h + 1) / 2
	}
	return out
}

// Forward computes the multi-level perforated forward transform of in with
// the given coefficient stride, returning the coefficient plane. Stride 1
// is the precise reversible transform.
func Forward(in *pix.Image, cfg Config, stride int) (*pix.Image, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	if stride < 1 {
		return nil, fmt.Errorf("dwt53: stride %d must be positive", stride)
	}
	buf := in.Clone()
	for _, wh := range regionSizes(in.W, in.H, cfg.Levels) {
		w, h := wh[0], wh[1]
		// Rows.
		par.Index(h, cfg.Workers, func(y int) {
			row := buf.Pix[y*in.W : y*in.W+w]
			scratch := make([]int32, w)
			fwdLift1D(func(i int) int32 { return row[i] },
				func(i int, v int32) { scratch[i] = v }, w, stride)
			copy(row, scratch)
		})
		// Columns.
		par.Index(w, cfg.Workers, func(x int) {
			scratch := make([]int32, h)
			fwdLift1D(func(i int) int32 { return buf.Pix[i*in.W+x] },
				func(i int, v int32) { scratch[i] = v }, h, stride)
			for i := 0; i < h; i++ {
				buf.Pix[i*in.W+x] = scratch[i]
			}
		})
	}
	return buf, nil
}

// Inverse exactly inverts the precise (stride 1) multi-level transform.
// Applied to a perforated coefficient plane it produces the approximate
// reconstruction whose accuracy the evaluation measures.
func Inverse(coef *pix.Image, cfg Config) (*pix.Image, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(coef); err != nil {
		return nil, err
	}
	buf := coef.Clone()
	regions := regionSizes(coef.W, coef.H, cfg.Levels)
	for l := len(regions) - 1; l >= 0; l-- {
		w, h := regions[l][0], regions[l][1]
		// Columns first (inverting the forward order rows-then-columns).
		par.Index(w, cfg.Workers, func(x int) {
			scratch := make([]int32, h)
			invLift1D(func(i int) int32 { return buf.Pix[i*coef.W+x] },
				func(i int, v int32) { scratch[i] = v }, h)
			for i := 0; i < h; i++ {
				buf.Pix[i*coef.W+x] = scratch[i]
			}
		})
		// Rows.
		par.Index(h, cfg.Workers, func(y int) {
			row := buf.Pix[y*coef.W : y*coef.W+w]
			scratch := make([]int32, w)
			invLift1D(func(i int) int32 { return row[i] },
				func(i int, v int32) { scratch[i] = v }, w)
			copy(row, scratch)
		})
	}
	return buf, nil
}

// Precise computes the baseline: the precise forward transform followed by
// the precise inverse. For the reversible 5/3 scheme the result equals the
// input bit-exactly; it is computed (not short-circuited) because its
// runtime is the normalization baseline.
func Precise(in *pix.Image, cfg Config) (*pix.Image, error) {
	coef, err := Forward(in, cfg, 1)
	if err != nil {
		return nil, err
	}
	return Inverse(coef, cfg)
}

// Run is a constructed dwt53 anytime automaton with its buffers.
type Run struct {
	Automaton *core.Automaton
	// Coef holds the forward stage's coefficient snapshots.
	Coef *core.Buffer[*pix.Image]
	// Out holds the inverse-transformed (viewable) snapshots.
	Out *core.Buffer[*pix.Image]
}

// New builds the dwt53 automaton: an iterative forward stage that
// re-executes the perforated transform at each stride of the schedule, and
// a non-anytime inverse stage consuming coefficient snapshots
// asynchronously.
func New(in *pix.Image, cfg Config) (*Run, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	coefBuf := core.NewBuffer[*pix.Image]("dwt53-coef", nil)
	out := core.NewBuffer[*pix.Image]("dwt53", nil)
	a := core.New()

	strideOf := make(map[core.Version]int, len(cfg.Strides))
	var strideMu sync.Mutex

	passes := make([]func() (*pix.Image, error), len(cfg.Strides))
	for i, stride := range cfg.Strides {
		passes[i] = func() (*pix.Image, error) {
			return Forward(in, cfg, stride)
		}
	}
	if err := a.AddStage("forward", func(c *core.Context) error {
		// Wrap Iterative to record which stride produced which version.
		i := 0
		wrapped := make([]func() (*pix.Image, error), len(passes))
		for j, p := range passes {
			stride := cfg.Strides[j]
			wrapped[j] = func() (*pix.Image, error) {
				img, err := p()
				if err == nil {
					strideMu.Lock()
					i++
					strideOf[core.Version(i)] = stride
					strideMu.Unlock()
				}
				return img, err
			}
		}
		return core.Iterative(c, coefBuf, wrapped)
	}); err != nil {
		return nil, err
	}
	if err := a.AddStage("inverse", func(c *core.Context) error {
		return core.AsyncConsume(c, coefBuf, func(s core.Snapshot[*pix.Image]) error {
			img, err := Inverse(s.Value, cfg)
			if err != nil {
				return err
			}
			if _, err := out.Publish(img, s.Final); err != nil {
				return err
			}
			if cfg.OnPass != nil {
				strideMu.Lock()
				stride := strideOf[s.Version]
				strideMu.Unlock()
				cfg.OnPass(stride, img)
			}
			return nil
		})
	}); err != nil {
		return nil, err
	}
	// Warm-pool support: rewind both buffers and the version→stride record
	// (a reused run renumbers versions from 1, so stale entries would be
	// overwritten anyway — clearing keeps the map from conflating runs).
	a.OnReset(func() {
		strideMu.Lock()
		clear(strideOf)
		strideMu.Unlock()
		coefBuf.Reset()
		out.Reset()
	})
	return &Run{Automaton: a, Coef: coefBuf, Out: out}, nil
}
