// Package histeq implements the histogram-equalization benchmark of the
// paper's evaluation (§IV-A2): enhancing the contrast of an image using a
// histogram of image intensities. Its anytime automaton has four
// computation stages in an asynchronous pipeline, exactly as the paper
// describes:
//
//  1. hist — diffusive; builds a histogram of pixel values using anytime
//     pseudo-random (LFSR) input sampling, as in paper Figure 3.
//  2. cdf — not anytime; builds the cumulative distribution function from
//     the latest histogram snapshot.
//  3. lut — not anytime; normalizes the CDF into the equalization lookup
//     table.
//  4. apply — diffusive; generates the high-contrast image using
//     tree-based output sampling.
//
// The two non-anytime middle stages are why histeq reaches its precise
// output well after 1x the baseline runtime (the paper reports 6x): every
// fresh histogram snapshot can trigger a fresh application pass.
package histeq

import (
	"fmt"

	"anytime/internal/core"
	"anytime/internal/par"
	"anytime/internal/perm"
	"anytime/internal/pix"
)

// Bins is the number of intensity bins (8-bit images).
const Bins = 256

// Config parameterizes the baseline and the automaton.
type Config struct {
	// Workers is the number of sampling workers per diffusive stage.
	// Default 1.
	Workers int
	// HistSnapshots is how many intermediate histogram versions the first
	// stage publishes. Default 6.
	HistSnapshots int
	// ApplyGranularity is the number of output pixels written per
	// published snapshot of the apply stage. Default pixels/4.
	ApplyGranularity int
	// Seed drives the LFSR input-sampling permutation. Default 1.
	Seed uint64
	// ReorderInput, if set, pre-permutes the input pixels into the
	// sampling order so the histogram stage reads memory sequentially --
	// the in-memory data reorganization the paper proposes to recover the
	// locality lost to pseudo-random sampling (§IV-C3). The reorder cost
	// is paid once at construction (the paper assumes near-data
	// processing performs it in memory).
	ReorderInput bool
	// Snapshot selects how the apply stage renders round snapshots. The
	// default, pix.SnapshotClone, publishes immutable clones;
	// pix.SnapshotTiles is the zero-copy publish path (see pix.TileCloner
	// for the aliasing contract consumers must then honor).
	Snapshot pix.SnapshotMode
	// Publish selects when the diffusive stages build and publish round
	// snapshots. Default core.PublishEveryRound.
	Publish core.PublishPolicy
	// OnSnapshot, if non-nil, is invoked after each publish of the final
	// output with the published image. Under pix.SnapshotTiles it must not
	// retain img past the call.
	OnSnapshot func(img *pix.Image)
}

func (cfg Config) withDefaults(pixels int) Config {
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.HistSnapshots == 0 {
		cfg.HistSnapshots = 6
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ApplyGranularity == 0 {
		// The per-pixel work of the apply stage is a single table lookup,
		// so snapshot publication (an O(pixels) render) must stay coarse
		// or it dominates the profile.
		cfg.ApplyGranularity = pixels / 4
		if cfg.ApplyGranularity < 1 {
			cfg.ApplyGranularity = 1
		}
	}
	return cfg
}

func (cfg Config) validate(in *pix.Image) error {
	if in.C != 1 {
		return fmt.Errorf("histeq: input must be grayscale, got %d channels", in.C)
	}
	if cfg.Workers < 1 {
		return fmt.Errorf("histeq: workers %d must be positive", cfg.Workers)
	}
	if cfg.HistSnapshots < 1 {
		return fmt.Errorf("histeq: HistSnapshots %d must be positive", cfg.HistSnapshots)
	}
	if cfg.ApplyGranularity < 1 {
		return fmt.Errorf("histeq: ApplyGranularity %d must be positive", cfg.ApplyGranularity)
	}
	return nil
}

// Hist is the output of the first stage: bin counts over the pixels
// sampled so far.
type Hist struct {
	Counts    [Bins]int64
	Processed int // pixels sampled
}

// CDF is the output of the second stage: the cumulative distribution of
// the histogram it consumed.
type CDF struct {
	Cum     [Bins]int64
	Samples int64 // total samples in the histogram
}

// LUT is the output of the third stage: the intensity remapping table.
type LUT struct {
	Map [Bins]int32
}

// buildCDF computes the cumulative distribution of h.
//
//anytime:hotpath
func buildCDF(h *Hist) *CDF {
	var c CDF
	var run int64
	for v := 0; v < Bins; v++ {
		run += h.Counts[v]
		c.Cum[v] = run
	}
	c.Samples = run
	return &c
}

// buildLUT normalizes a CDF into the standard equalization table
// lut[v] = round((cdf[v]-cdfMin) * 255 / (n-cdfMin)). For degenerate
// inputs (constant images) it falls back to the identity map.
//
//anytime:hotpath
func buildLUT(c *CDF) *LUT {
	var l LUT
	var cdfMin int64
	for v := 0; v < Bins; v++ {
		if c.Cum[v] > 0 {
			cdfMin = c.Cum[v]
			break
		}
	}
	den := c.Samples - cdfMin
	if den <= 0 {
		for v := range l.Map {
			l.Map[v] = int32(v)
		}
		return &l
	}
	for v := 0; v < Bins; v++ {
		num := c.Cum[v] - cdfMin
		if num < 0 {
			num = 0
		}
		l.Map[v] = int32((num*255 + den/2) / den)
	}
	return &l
}

//
//anytime:hotpath
func binOf(v int32) int {
	if v < 0 {
		return 0
	}
	if v >= Bins {
		return Bins - 1
	}
	return int(v)
}

// Precise computes the baseline equalized image: exact histogram, CDF,
// LUT, and a parallel application pass.
func Precise(in *pix.Image, cfg Config) (*pix.Image, error) {
	cfg = cfg.withDefaults(in.Pixels())
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	var h Hist
	for _, v := range in.Pix {
		h.Counts[binOf(v)]++
	}
	h.Processed = in.Pixels()
	lut := buildLUT(buildCDF(&h))
	out, err := pix.NewGray(in.W, in.H)
	if err != nil {
		return nil, err
	}
	par.Rows(in.H, cfg.Workers, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < in.W; x++ {
				out.SetGray(x, y, lut.Map[binOf(in.Gray(x, y))])
			}
		}
	})
	return out, nil
}

// Run is a constructed histeq anytime automaton with its output buffer and
// the intermediate buffers of the pipeline (exposed for tests and tools).
type Run struct {
	Automaton *core.Automaton
	HistBuf   *core.Buffer[*Hist]
	CDFBuf    *core.Buffer[*CDF]
	LUTBuf    *core.Buffer[*LUT]
	Out       *core.Buffer[*pix.Image]
}

// New builds the four-stage histeq automaton described in the package
// comment.
func New(in *pix.Image, cfg Config) (*Run, error) {
	cfg = cfg.withDefaults(in.Pixels())
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	pixels := in.Pixels()
	inOrd, err := perm.PseudoRandom(pixels, cfg.Seed)
	if err != nil {
		return nil, err
	}
	outOrd, err := perm.Tree2D(in.H, in.W)
	if err != nil {
		return nil, err
	}

	histBuf := core.NewBuffer[*Hist]("hist", nil)
	cdfBuf := core.NewBuffer[*CDF]("cdf", nil)
	lutBuf := core.NewBuffer[*LUT]("lut", nil)
	out := core.NewBuffer[*pix.Image]("histeq", nil)
	a := core.New()

	// Stage 1: diffusive histogram via pseudo-random input sampling, with
	// thread-privatized partials merged at each snapshot. The per-element
	// work is one increment, so the batched diffusive runner keeps the
	// sampling overhead proportionate.
	histGran := pixels / cfg.HistSnapshots
	if histGran < 1 {
		histGran = 1
	}
	partials := make([]*Hist, cfg.Workers)
	for w := range partials {
		partials[w] = &Hist{}
	}
	// With ReorderInput, position pos of the order reads reordered[pos]
	// (sequential); otherwise it reads in.Pix[inOrd.At(pos)] (random).
	// Both visit exactly the same multiset of pixels. The branch between
	// the two lives outside the per-element loop: one table increment per
	// pixel is cheap enough that a closure call per sample used to double
	// the stage's cost.
	var reordered []int32
	if cfg.ReorderInput {
		reordered, err = inOrd.Reorder(in.Pix)
		if err != nil {
			return nil, err
		}
	}
	if err := a.AddStage("hist", func(c *core.Context) error {
		return core.DiffusiveBatch(c, histBuf, pixels,
			func(worker, lo, hi int) error {
				h := partials[worker]
				if reordered != nil {
					for _, v := range reordered[lo:hi] {
						h.Counts[binOf(v)]++
					}
				} else {
					px := in.Pix
					for pos := lo; pos < hi; pos++ {
						h.Counts[binOf(px[inOrd.At(pos)])]++
					}
				}
				h.Processed += hi - lo
				return nil
			},
			func(processed int) (*Hist, error) {
				merged := &Hist{}
				for _, p := range partials {
					for v := range merged.Counts {
						merged.Counts[v] += p.Counts[v]
					}
					merged.Processed += p.Processed
				}
				return merged, nil
			},
			core.RoundConfig{Granularity: histGran, Workers: cfg.Workers, Policy: cfg.Publish},
			true)
	}); err != nil {
		return nil, err
	}

	// Stage 2 (not anytime): CDF of whichever histogram is current.
	if err := a.AddStage("cdf", func(c *core.Context) error {
		return core.AsyncConsume(c, histBuf, func(s core.Snapshot[*Hist]) error {
			_, err := cdfBuf.Publish(buildCDF(s.Value), s.Final)
			return err
		})
	}); err != nil {
		return nil, err
	}

	// Stage 3 (not anytime): normalize the CDF into the lookup table.
	if err := a.AddStage("lut", func(c *core.Context) error {
		return core.AsyncConsume(c, cdfBuf, func(s core.Snapshot[*CDF]) error {
			_, err := lutBuf.Publish(buildLUT(s.Value), s.Final)
			return err
		})
	}); err != nil {
		return nil, err
	}

	// Stage 4: diffusive application with tree-based output sampling; one
	// full anytime pass per consumed LUT version, final pass on the final
	// LUT.
	working, err := pix.NewGray(in.W, in.H)
	if err != nil {
		return nil, err
	}
	snap, err := pix.NewSnapshotter(working, cfg.Workers, cfg.Snapshot)
	if err != nil {
		return nil, err
	}
	if err := a.AddStage("apply", func(c *core.Context) error {
		return core.AsyncConsume(c, lutBuf, func(s core.Snapshot[*LUT]) error {
			lut := s.Value
			return core.DiffusiveBatch(c, out, pixels,
				func(worker, lo, hi int) error {
					// One lookup and one store per pixel: hoist the
					// table, source, and destination so the loop carries
					// no pointer chases through lut/working/in.
					tab := &lut.Map
					src, dst := in.Pix, working.Pix
					for pos := lo; pos < hi; pos++ {
						d := outOrd.At(pos)
						dst[d] = tab[binOf(src[d])]
						snap.Mark(worker, d)
					}
					return nil
				},
				func(processed int) (*pix.Image, error) {
					img, err := snap.Snapshot()
					if err != nil {
						return nil, err
					}
					if cfg.OnSnapshot != nil {
						cfg.OnSnapshot(img)
					}
					return img, nil
				},
				core.RoundConfig{Granularity: cfg.ApplyGranularity, Workers: cfg.Workers, Policy: cfg.Publish},
				s.Final)
		})
	}); err != nil {
		return nil, err
	}
	// Warm-pool support. The per-run state of this pipeline is the four
	// buffers, the apply snapshotter, and — crucially — the worker-private
	// histogram partials, which live outside the stage function: without
	// zeroing them a reused automaton would double-count every pixel and
	// publish a wrong (though well-formed) histogram.
	a.OnReset(func() {
		for _, p := range partials {
			*p = Hist{}
		}
		snap.Reset()
		histBuf.Reset()
		cdfBuf.Reset()
		lutBuf.Reset()
		out.Reset()
	})
	// Warm-start support: seed only the output buffer — the histogram, CDF,
	// and LUT stages recompute from scratch (they are cheap and
	// input-global, so a delta start buys nothing there), and the apply
	// stage overwrites every pixel per consumed LUT version, so the precise
	// final is unchanged.
	a.OnSeed(func(seed any, v core.Version) error {
		img, stale, err := pix.AsSeedFrame(seed, in.W, in.H, 1)
		if err != nil {
			return fmt.Errorf("histeq: %w", err)
		}
		img.CloneInto(working)
		if err := snap.Seed(stale); err != nil {
			return err
		}
		first, err := snap.Snapshot()
		if err != nil {
			return err
		}
		return out.Seed(first, v)
	})
	return &Run{Automaton: a, HistBuf: histBuf, CDFBuf: cdfBuf, LUTBuf: lutBuf, Out: out}, nil
}
