package histeq

import (
	"context"
	"math"
	"testing"

	"anytime/internal/metrics"
	"anytime/internal/pix"
)

func testImage(t *testing.T, w, h int) *pix.Image {
	t.Helper()
	im, err := pix.SyntheticGray(w, h, 17)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestConfigValidation(t *testing.T) {
	in := testImage(t, 8, 8)
	bad := []Config{
		{Workers: -1},
		{HistSnapshots: -2},
		{ApplyGranularity: -1},
	}
	for _, cfg := range bad {
		if _, err := Precise(in, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		if _, err := New(in, cfg); err == nil {
			t.Errorf("config %+v accepted by New", cfg)
		}
	}
	rgb := pix.MustNew(4, 4, 3)
	if _, err := Precise(rgb, Config{}); err == nil {
		t.Error("RGB input accepted")
	}
}

func TestBuildCDFAndLUT(t *testing.T) {
	var h Hist
	h.Counts[0] = 10
	h.Counts[128] = 20
	h.Counts[255] = 30
	c := buildCDF(&h)
	if c.Samples != 60 {
		t.Errorf("Samples = %d", c.Samples)
	}
	if c.Cum[0] != 10 || c.Cum[127] != 10 || c.Cum[128] != 30 || c.Cum[255] != 60 {
		t.Errorf("CDF wrong: %v %v %v %v", c.Cum[0], c.Cum[127], c.Cum[128], c.Cum[255])
	}
	l := buildLUT(c)
	// cdfMin = 10, den = 50: lut[0]=0, lut[128]=(20*255+25)/50=102, lut[255]=255.
	if l.Map[0] != 0 || l.Map[128] != 102 || l.Map[255] != 255 {
		t.Errorf("LUT wrong: %d %d %d", l.Map[0], l.Map[128], l.Map[255])
	}
}

func TestBuildLUTConstantImageIdentity(t *testing.T) {
	var h Hist
	h.Counts[42] = 100
	l := buildLUT(buildCDF(&h))
	for v, m := range l.Map {
		if m != int32(v) {
			t.Fatalf("degenerate LUT not identity at %d: %d", v, m)
		}
	}
}

func TestPreciseStretchesContrast(t *testing.T) {
	// A low-contrast ramp image must be stretched toward the full range.
	in := pix.MustNew(64, 64, 1)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			in.SetGray(x, y, 100+int32((x+y)/4)) // values 100..131
		}
	}
	out, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := out.Pix[0], out.Pix[0]
	for _, v := range out.Pix {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo != 0 || hi != 255 {
		t.Errorf("equalized range [%d,%d], want [0,255]", lo, hi)
	}
}

func TestPreciseParallelMatchesSerial(t *testing.T) {
	in := testImage(t, 48, 40)
	a, err := Precise(in, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Precise(in, Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("parallel baseline differs")
	}
}

func TestAutomatonFinalEqualsPrecise(t *testing.T) {
	in := testImage(t, 64, 64)
	want, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		run, err := New(in, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, ok := run.Out.Latest()
		if !ok || !snap.Final {
			t.Fatal("no final output snapshot")
		}
		if !snap.Value.Equal(want) {
			t.Errorf("workers=%d: final output differs from precise baseline", workers)
		}
	}
}

func TestIntermediateBuffersReachFinal(t *testing.T) {
	in := testImage(t, 32, 32)
	run, err := New(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	if !run.HistBuf.Final() || !run.CDFBuf.Final() || !run.LUTBuf.Final() || !run.Out.Final() {
		t.Error("not every pipeline buffer reached its final version")
	}
	hist, _ := run.HistBuf.Latest()
	var total int64
	for _, c := range hist.Value.Counts {
		total += c
	}
	if total != int64(in.Pixels()) {
		t.Errorf("final histogram holds %d samples, want %d", total, in.Pixels())
	}
}

// TestEarlyOutputAvailableBeforeHistogramCompletes: the pipeline must
// publish whole-application approximations while the first stage is still
// sampling — the early-availability property of the model.
func TestEarlyOutputAvailableBeforeHistogramCompletes(t *testing.T) {
	in := testImage(t, 64, 64)
	run, err := New(in, Config{HistSnapshots: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Wait for the first whole-application output.
	snap, err2 := run.Out.WaitNewer(context.Background(), 0)
	if err2 != nil {
		t.Fatal(err2)
	}
	if snap.Final {
		// Possible but wildly unlikely; the first output would have to be
		// the final one.
		t.Log("first observed output was already final")
	}
	hist, ok := run.HistBuf.Latest()
	if !ok {
		t.Fatal("output published before any histogram snapshot")
	}
	if hist.Final && hist.Value.Processed == in.Pixels() && !snap.Final {
		t.Log("histogram completed before first output; pipeline overlap not observed on this run")
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestOutputSNRTrendsToInf(t *testing.T) {
	in := testImage(t, 64, 64)
	want, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var snrs []float64
	run, err := New(in, Config{
		OnSnapshot: func(img *pix.Image) {
			db, err := metrics.SNR(want.Pix, img.Pix)
			if err != nil {
				t.Error(err)
				return
			}
			snrs = append(snrs, db)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(snrs) == 0 {
		t.Fatal("no output snapshots")
	}
	if !math.IsInf(snrs[len(snrs)-1], 1) {
		t.Errorf("final SNR = %v, want +Inf", snrs[len(snrs)-1])
	}
}

func TestConstantImage(t *testing.T) {
	in := pix.MustNew(16, 16, 1)
	in.Fill(99)
	want, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := New(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, _ := run.Out.Latest()
	if !snap.Value.Equal(want) {
		t.Error("constant image: final != precise")
	}
}

func TestTinyImages(t *testing.T) {
	for _, dim := range [][2]int{{1, 1}, {2, 3}, {7, 1}} {
		in := testImage(t, dim[0], dim[1])
		want, err := Precise(in, Config{})
		if err != nil {
			t.Fatal(err)
		}
		run, err := New(in, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, _ := run.Out.Latest()
		if !snap.Value.Equal(want) {
			t.Errorf("%v: final != precise", dim)
		}
	}
}

// TestReorderInputEquivalence: the §IV-C3 in-memory data reordering is a
// pure locality optimization — the final output must be bit-identical with
// and without it.
func TestReorderInputEquivalence(t *testing.T) {
	in := testImage(t, 64, 64)
	runWith := func(reorder bool) *pix.Image {
		run, err := New(in, Config{ReorderInput: reorder})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, ok := run.Out.Latest()
		if !ok || !snap.Final {
			t.Fatal("no final output")
		}
		return snap.Value
	}
	plain := runWith(false)
	reordered := runWith(true)
	if !plain.Equal(reordered) {
		t.Error("input reordering changed the output")
	}
	want, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reordered.Equal(want) {
		t.Error("reordered run differs from precise baseline")
	}
}

// TestReorderInputHistogramsMatch: intermediate histograms are estimates of
// the same population either way; the FINAL histograms must be identical.
func TestReorderInputHistogramsMatch(t *testing.T) {
	in := testImage(t, 32, 32)
	finalHist := func(reorder bool) *Hist {
		run, err := New(in, Config{ReorderInput: reorder})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, _ := run.HistBuf.Latest()
		return snap.Value
	}
	a, b := finalHist(false), finalHist(true)
	if a.Counts != b.Counts {
		t.Error("final histograms differ under reordering")
	}
}

// TestResetReuseBitExact guards the warm-pool hazard specific to this app:
// the worker-private histogram partials live outside the stage function, so
// a reused automaton that failed to zero them would double-count every
// pixel. Three consecutive checkouts must each end bit-exact with Precise.
func TestResetReuseBitExact(t *testing.T) {
	in := testImage(t, 32, 32)
	ref, err := Precise(in, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := New(in, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 1; cycle <= 3; cycle++ {
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		snap, ok := run.Out.Latest()
		if !ok || !snap.Final {
			t.Fatalf("cycle %d: no final output", cycle)
		}
		if !snap.Value.Equal(ref) {
			t.Fatalf("cycle %d: reused automaton diverged from Precise", cycle)
		}
		if err := run.Automaton.Reset(); err != nil {
			t.Fatalf("cycle %d: reset: %v", cycle, err)
		}
	}
}
