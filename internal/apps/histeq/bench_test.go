package histeq

import (
	"testing"

	"anytime/internal/perm"
	"anytime/internal/pix"
)

// histeq's two diffusive stages are table-lookup kernels: the histogram
// build (one increment per sampled pixel) and the LUT application (one
// lookup + store per output pixel). Their per-element cost is what the
// batched diffusive runner has to keep proportionate; BENCH_kernels.json
// pins these numbers.

func benchGray(b *testing.B, w, h int) *pix.Image {
	b.Helper()
	img, err := pix.SyntheticGray(w, h, 13)
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// BenchmarkHistSampled builds the full histogram through the LFSR sampling
// order — the hist stage's inner loop, random-access pattern included.
func BenchmarkHistSampled(b *testing.B) {
	in := benchGray(b, 256, 256)
	ord, err := perm.PseudoRandom(in.Pixels(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(in.Pixels()) * 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var h Hist
		n := ord.Len()
		for pos := 0; pos < n; pos++ {
			h.Counts[binOf(in.Pix[ord.At(pos)])]++
		}
		if h.Counts[0] < 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkApplyLUT runs the apply stage's inner loop over the tree order:
// one LUT lookup and one store per output pixel.
func BenchmarkApplyLUT(b *testing.B) {
	in := benchGray(b, 256, 256)
	ord, err := perm.Tree2D(in.H, in.W)
	if err != nil {
		b.Fatal(err)
	}
	var h Hist
	for _, v := range in.Pix {
		h.Counts[binOf(v)]++
	}
	lut := buildLUT(buildCDF(&h))
	out := pix.MustNew(in.W, in.H, 1)
	b.SetBytes(int64(in.Pixels()) * 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := ord.Len()
		for pos := 0; pos < n; pos++ {
			dst := ord.At(pos)
			out.Pix[dst] = lut.Map[binOf(in.Pix[dst])]
		}
	}
}

// BenchmarkPrecise256 is the whole-image baseline pass (single worker).
func BenchmarkPrecise256(b *testing.B) {
	in := benchGray(b, 256, 256)
	b.SetBytes(int64(in.Pixels()) * 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Precise(in, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
