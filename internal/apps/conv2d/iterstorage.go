package conv2d

import (
	"fmt"

	"anytime/internal/core"
	"anytime/internal/pix"
	"anytime/internal/store"
)

// This file implements the paper's *iterative* use of approximate storage
// (§III-B1, "Approximate Storage"): the whole convolution is re-executed at
// a ladder of storage accuracy levels f_1 … f_n, where each f_i reads its
// input through a device at a progressively higher supply voltage (lower
// upset probability) and the final pass runs at nominal (precise) voltage.
//
// Because approximate storage is data-destructive — a corrupted bit stays
// corrupted even after raising the voltage — the device must be flushed
// (reinitialized with precise values) between intermediate computations,
// exactly as the paper prescribes. The ladder therefore trades repeated
// passes (the redundant work inherent to iterative stages) for storage
// energy savings during the early, low-voltage passes.

// IterStorageConfig parameterizes the iterative approximate-storage
// automaton.
type IterStorageConfig struct {
	// KernelSize is the (odd) blur kernel side. Default 9.
	KernelSize int
	// Levels is the accuracy ladder, ordered least to most accurate; the
	// final level must be precise (zero upset probability). Default
	// store.DefaultLevels.
	Levels []store.VoltageLevel
	// Seed makes the fault sequences reproducible.
	Seed uint64
	// OnPass, if non-nil, runs after each pass with the level used and the
	// published image.
	OnPass func(level store.VoltageLevel, img *pix.Image)
}

func (cfg IterStorageConfig) withDefaults() IterStorageConfig {
	if cfg.KernelSize == 0 {
		cfg.KernelSize = 9
	}
	if cfg.Levels == nil {
		cfg.Levels = store.DefaultLevels
	}
	return cfg
}

func (cfg IterStorageConfig) validate(in *pix.Image) error {
	if in.C != 1 {
		return fmt.Errorf("conv2d: input must be grayscale, got %d channels", in.C)
	}
	if cfg.KernelSize < 1 || cfg.KernelSize%2 == 0 {
		return fmt.Errorf("conv2d: kernel size %d must be odd and positive", cfg.KernelSize)
	}
	if len(cfg.Levels) == 0 {
		return fmt.Errorf("conv2d: empty voltage ladder")
	}
	for i, l := range cfg.Levels {
		if l.UpsetProb < 0 || l.UpsetProb > 1 {
			return fmt.Errorf("conv2d: level %d upset probability %v out of range", i, l.UpsetProb)
		}
		if i > 0 && l.UpsetProb > cfg.Levels[i-1].UpsetProb {
			return fmt.Errorf("conv2d: ladder accuracy must not decrease (level %d)", i)
		}
	}
	if last := cfg.Levels[len(cfg.Levels)-1]; last.UpsetProb != 0 {
		return fmt.Errorf("conv2d: final ladder level %q must be precise (paper Property 1)", last.Name)
	}
	return nil
}

// NewIterativeStorage builds a 2dconv automaton whose single iterative
// stage re-executes the full convolution once per voltage level, flushing
// the approximate input storage between passes and publishing each pass's
// output. The final (nominal) pass is bit-exact with Precise.
func NewIterativeStorage(in *pix.Image, cfg IterStorageConfig) (*Run, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	arr, err := store.NewArray(in.Pix, 8, cfg.Levels[0].UpsetProb, cfg.Seed)
	if err != nil {
		return nil, err
	}
	half := cfg.KernelSize / 2
	weights, wsum := kernelWeights(Box, cfg.KernelSize)
	out := core.NewBuffer[*pix.Image]("conv2d-iterstorage", nil)

	passes := make([]func() (*pix.Image, error), len(cfg.Levels))
	for i, level := range cfg.Levels {
		passes[i] = func() (*pix.Image, error) {
			// Flush: reinitialize the device with precise values so the
			// previous pass's (data-destructive) corruption does not
			// degrade this higher-accuracy pass.
			if err := arr.Flush(in.Pix); err != nil {
				return nil, err
			}
			if err := arr.SetProb(level.UpsetProb); err != nil {
				return nil, err
			}
			r := &reader{img: in, arr: arr}
			img, err := pix.NewGray(in.W, in.H)
			if err != nil {
				return nil, err
			}
			for y := 0; y < in.H; y++ {
				for x := 0; x < in.W; x++ {
					img.SetGray(x, y, convolvePixel(r, weights, wsum, in.W, in.H, half, x, y))
				}
			}
			if cfg.OnPass != nil {
				cfg.OnPass(level, img)
			}
			return img, nil
		}
	}

	a := core.New()
	if err := a.AddStage("convolve-ladder", func(c *core.Context) error {
		return core.Iterative(c, out, passes)
	}); err != nil {
		return nil, err
	}
	return &Run{Automaton: a, Out: out}, nil
}

// LadderEnergy estimates the relative storage read energy of a full ladder
// run versus performing every pass at nominal voltage: each pass reads the
// same number of words, but a pass at level l spends only (1 - PowerSave)
// of nominal storage power. This is the quantity the paper's energy
// argument rests on (EnerJ's ≈90% supply power saving at 0.001% upsets).
func LadderEnergy(levels []store.VoltageLevel) float64 {
	if len(levels) == 0 {
		return 0
	}
	var total float64
	for _, l := range levels {
		total += 1 - l.PowerSave
	}
	return total / float64(len(levels))
}
