package conv2d

import (
	"testing"

	"anytime/internal/pix"
)

// The per-pixel convolution is the serving-path kernel: the automaton calls
// it once per sampled output pixel, so its cost (not the round loop's) is
// the floor of conv2d's time-to-precision. BENCH_kernels.json pins these.

func benchInput(b *testing.B, w, h int) *pix.Image {
	b.Helper()
	img, err := pix.SyntheticGray(w, h, 7)
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// BenchmarkConvolvePixelInterior is the hot case: a window fully inside the
// image, where no coordinate clamping is needed.
func BenchmarkConvolvePixelInterior(b *testing.B) {
	in := benchInput(b, 256, 256)
	weights, wsum := kernelWeights(Box, 9)
	r := &reader{img: in}
	var sink int32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := 64 + i%128
		sink += convolvePixel(r, weights, wsum, in.W, in.H, 4, x, 128)
	}
	_ = sink
}

// BenchmarkConvolvePixelBorder keeps the window clamped on two sides — the
// slow path the interior fast path must not regress.
func BenchmarkConvolvePixelBorder(b *testing.B) {
	in := benchInput(b, 256, 256)
	weights, wsum := kernelWeights(Box, 9)
	r := &reader{img: in}
	var sink int32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += convolvePixel(r, weights, wsum, in.W, in.H, 4, i%4, 2)
	}
	_ = sink
}

// BenchmarkPrecise256 is the whole-image baseline pass (single worker), the
// denominator of every anytime speedup figure.
func BenchmarkPrecise256(b *testing.B) {
	in := benchInput(b, 256, 256)
	b.SetBytes(int64(in.Pixels()) * 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Precise(in, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
