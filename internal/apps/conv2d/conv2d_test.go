package conv2d

import (
	"context"
	"errors"
	"math"
	"testing"

	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
)

func testImage(t *testing.T, w, h int) *pix.Image {
	t.Helper()
	im, err := pix.SyntheticGray(w, h, 7)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestConfigValidation(t *testing.T) {
	in := testImage(t, 16, 16)
	cases := []Config{
		{KernelSize: 4},
		{KernelSize: -3},
		{PixelBits: 9},
		{Workers: -1},
		{Storage: &StorageConfig{Prob: 2}},
	}
	for _, cfg := range cases {
		if _, err := Precise(in, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		if _, err := New(in, cfg); err == nil {
			t.Errorf("config %+v accepted by New", cfg)
		}
	}
	rgb := pix.MustNew(4, 4, 3)
	if _, err := Precise(rgb, Config{}); err == nil {
		t.Error("RGB input accepted")
	}
}

func TestPreciseIsMeanFilter(t *testing.T) {
	// A constant image blurs to itself.
	in := pix.MustNew(12, 12, 1)
	in.Fill(77)
	out, err := Precise(in, Config{KernelSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Pix {
		if v != 77 {
			t.Fatalf("constant image changed: %d", v)
		}
	}
}

func TestPreciseKnownSmallCase(t *testing.T) {
	// 3x3 kernel on a single bright pixel in the center of a 3x3 image:
	// every output pixel averages a window containing the bright pixel
	// once or more (border clamping replicates edge pixels).
	in := pix.MustNew(3, 3, 1)
	in.SetGray(1, 1, 90)
	out, err := Precise(in, Config{KernelSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Gray(1, 1); got != 10 {
		t.Errorf("center = %d, want 10 (90/9)", got)
	}
}

func TestPreciseParallelMatchesSerial(t *testing.T) {
	in := testImage(t, 64, 48)
	serial, err := Precise(in, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Precise(in, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Equal(parallel) {
		t.Error("parallel baseline differs from serial")
	}
}

// TestAutomatonFinalEqualsPrecise is the central anytime guarantee: run to
// completion, the automaton's final output is bit-exact with the baseline.
func TestAutomatonFinalEqualsPrecise(t *testing.T) {
	in := testImage(t, 64, 64)
	want, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		run, err := New(in, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, ok := run.Out.Latest()
		if !ok || !snap.Final {
			t.Fatal("no final snapshot")
		}
		if !snap.Value.Equal(want) {
			t.Errorf("workers=%d: final output differs from precise baseline", workers)
		}
	}
}

// TestSNRIncreasesOverVersions: published snapshots must trend toward the
// precise output, ending at +Inf dB.
func TestSNRIncreasesOverVersions(t *testing.T) {
	in := testImage(t, 64, 64)
	want, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var snrs []float64
	run, err := New(in, Config{
		Granularity: 64 * 64 / 16,
		OnSnapshot: func(processed int, img *pix.Image) {
			db, err := metrics.SNR(want.Pix, img.Pix)
			if err != nil {
				t.Error(err)
				return
			}
			snrs = append(snrs, db)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(snrs) != 16 {
		t.Fatalf("got %d snapshots", len(snrs))
	}
	if !math.IsInf(snrs[len(snrs)-1], 1) {
		t.Errorf("final SNR = %v, want +Inf", snrs[len(snrs)-1])
	}
	// The trend must rise: last quarter mean above first quarter mean.
	q := len(snrs) / 4
	first, last := mean(snrs[:q]), mean(finiteOnly(snrs[len(snrs)-q:]))
	if last <= first {
		t.Errorf("SNR did not improve: first quarter %v, last quarter %v", first, last)
	}
	// Early snapshots must already be meaningful approximations (hold-fill
	// low-resolution rendering), not near-black frames.
	if snrs[0] < 5 {
		t.Errorf("first snapshot SNR %v dB; progressive rendering broken", snrs[0])
	}
}

func finiteOnly(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return []float64{1e9}
	}
	return out
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestReducedPrecisionOrdering reproduces Figure 19's qualitative result:
// at full sample size, fewer pixel bits give lower SNR, and 8 bits are
// exact.
func TestReducedPrecisionOrdering(t *testing.T) {
	in := testImage(t, 64, 64)
	ref, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	finalSNR := func(bits uint) float64 {
		run, err := New(in, Config{PixelBits: bits})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, _ := run.Out.Latest()
		db, err := metrics.SNR(ref.Pix, snap.Value.Pix)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	s8, s6, s4, s2 := finalSNR(8), finalSNR(6), finalSNR(4), finalSNR(2)
	if !math.IsInf(s8, 1) {
		t.Errorf("8-bit final SNR = %v, want +Inf", s8)
	}
	if !(s6 > s4 && s4 > s2) {
		t.Errorf("precision ordering violated: 6b=%v 4b=%v 2b=%v", s6, s4, s2)
	}
	if s6 < 20 {
		t.Errorf("6-bit SNR %v dB implausibly low (paper: 37.9 dB)", s6)
	}
}

// TestStorageFaultsDegradeSNR reproduces Figure 20's qualitative result:
// higher read-upset probability gives lower final SNR; probability zero is
// exact.
func TestStorageFaultsDegradeSNR(t *testing.T) {
	in := testImage(t, 64, 64)
	ref, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	finalSNR := func(p float64) float64 {
		run, err := New(in, Config{Storage: &StorageConfig{Prob: p, Seed: 12}})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, _ := run.Out.Latest()
		db, err := metrics.SNR(ref.Pix, snap.Value.Pix)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	s0 := finalSNR(0)
	if !math.IsInf(s0, 1) {
		t.Errorf("p=0 final SNR = %v, want +Inf", s0)
	}
	sHigh := finalSNR(1e-3)
	sLow := finalSNR(1e-5)
	if !(sLow > sHigh) {
		t.Errorf("fault ordering violated: p=1e-5 gives %v dB, p=1e-3 gives %v dB", sLow, sHigh)
	}
}

// TestInterruptMidRunYieldsValidOutput: stop partway; the latest snapshot
// must exist, be non-final, and have finite positive SNR.
func TestInterruptMidRunYieldsValidOutput(t *testing.T) {
	in := testImage(t, 128, 128)
	ref, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	firstSnap := make(chan struct{})
	closed := false
	run, err := New(in, Config{
		Granularity: 128 * 128 / 64,
		OnSnapshot: func(processed int, img *pix.Image) {
			if !closed {
				closed = true
				close(firstSnap)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-firstSnap
	run.Automaton.Stop()
	snap, ok := run.Out.Latest()
	if !ok {
		t.Fatal("no snapshot after stop")
	}
	db, err := metrics.SNR(ref.Pix, snap.Value.Pix)
	if err != nil {
		t.Fatal(err)
	}
	if db < 3 {
		t.Errorf("interrupted output SNR = %v dB, implausibly bad", db)
	}
}

func TestTinyImages(t *testing.T) {
	for _, dim := range [][2]int{{1, 1}, {1, 7}, {5, 1}, {2, 2}} {
		in, err := pix.SyntheticGray(dim[0], dim[1], 3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Precise(in, Config{KernelSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		run, err := New(in, Config{KernelSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, _ := run.Out.Latest()
		if !snap.Value.Equal(want) {
			t.Errorf("%dx%d: final != precise", dim[0], dim[1])
		}
	}
}

func TestKernelWeights(t *testing.T) {
	w, total := kernelWeights(Box, 5)
	for _, v := range w {
		if v != 1 {
			t.Fatalf("box weights = %v", w)
		}
	}
	if total != 5 {
		t.Errorf("box total = %d", total)
	}
	w, total = kernelWeights(Gaussian, 5)
	want := []int64{1, 4, 6, 4, 1}
	for i, v := range want {
		if w[i] != v {
			t.Fatalf("gaussian weights = %v, want %v", w, want)
		}
	}
	if total != 16 {
		t.Errorf("gaussian total = %d", total)
	}
}

func TestGaussianKernelValidationAndExactness(t *testing.T) {
	in := testImage(t, 48, 48)
	if _, err := Precise(in, Config{Kernel: Kernel(9)}); err == nil {
		t.Error("unknown kernel accepted")
	}
	want, err := Precise(in, Config{Kernel: Gaussian})
	if err != nil {
		t.Fatal(err)
	}
	box, err := Precise(in, Config{Kernel: Box})
	if err != nil {
		t.Fatal(err)
	}
	if want.Equal(box) {
		t.Error("gaussian and box kernels produced identical output")
	}
	run, err := New(in, Config{Kernel: Gaussian, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, _ := run.Out.Latest()
	if !snap.Value.Equal(want) {
		t.Error("gaussian automaton final differs from gaussian baseline")
	}
}

func TestGaussianPreservesConstant(t *testing.T) {
	in := pix.MustNew(16, 16, 1)
	in.Fill(123)
	out, err := Precise(in, Config{Kernel: Gaussian, KernelSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Pix {
		if v != 123 {
			t.Fatalf("gaussian changed a constant image: %d", v)
		}
	}
}

// TestResetReuseAfterInterrupt: a pooled automaton checked back in after an
// early stop (the deadline-serving path) must produce the bit-exact precise
// output on its next full checkout, with versions renumbered from 1.
func TestResetReuseAfterInterrupt(t *testing.T) {
	in := testImage(t, 48, 48)
	want, err := Precise(in, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := New(in, Config{Workers: 2, Snapshot: pix.SnapshotTiles})
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 1: interrupt after the first published version.
	got := core.StopWhen(run.Automaton, run.Out, func(core.Snapshot[*pix.Image]) bool { return true })
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-got; !ok {
		t.Fatal("no snapshot before interrupt")
	}
	if err := run.Automaton.Wait(); err != nil && !errors.Is(err, core.ErrStopped) {
		t.Fatal(err)
	}
	if err := run.Automaton.Reset(); err != nil {
		t.Fatal(err)
	}
	// Cycle 2: run to completion; the output must match the precise
	// baseline bit for bit, with no pixels held over from cycle 1.
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, ok := run.Out.Latest()
	if !ok || !snap.Final {
		t.Fatal("no final snapshot after reuse")
	}
	if snap.Version == 0 || !snap.Value.Equal(want) {
		t.Fatalf("reused run diverged from precise baseline (version %d)", snap.Version)
	}
}
