// Package conv2d implements the 2dconv benchmark of the paper's evaluation
// (§IV-A2): a 2D convolution applying a blur filter to a grayscale image,
// "many dot products, computed for each pixel". Its anytime automaton is a
// single diffusive stage using output sampling with a two-dimensional tree
// permutation (Figures 11 and 16). The package also supports the two
// hardware-approximation studies run on 2dconv:
//
//   - reduced fixed-point pixel precision (Figure 19), via bit masking; and
//   - approximate storage for the input image (Figure 20), via the
//     fault-injecting array of internal/store.
package conv2d

import (
	"fmt"

	"anytime/internal/core"
	"anytime/internal/fixpoint"
	"anytime/internal/par"
	"anytime/internal/perm"
	"anytime/internal/pix"
	"anytime/internal/sampling"
	"anytime/internal/store"
)

// Kernel selects the convolution filter.
type Kernel int

const (
	// Box is the uniform mean filter the evaluation uses by default.
	Box Kernel = iota
	// Gaussian is a binomial approximation of a Gaussian blur (Pascal
	// row weights), a heavier but more faithful smoothing filter.
	Gaussian
)

// Config parameterizes both the precise baseline and the anytime automaton.
// The zero value selects the defaults used throughout the evaluation.
type Config struct {
	// KernelSize is the (odd) side of the blur kernel. Default 9.
	KernelSize int
	// Kernel selects the filter. Default Box.
	Kernel Kernel
	// PixelBits is the input pixel precision in bits (1..8). Pixels are
	// reduced with KeepTop before the convolution. Default 8 (precise).
	PixelBits uint
	// Workers is the number of sampling workers. Default 1.
	Workers int
	// Granularity is the number of output pixels computed per published
	// snapshot. Default pixels/32.
	Granularity int
	// Storage, if non-nil, routes input pixel reads through simulated
	// approximate storage with the given per-bit read upset probability.
	Storage *StorageConfig
	// Snapshot selects how round snapshots are rendered. The default,
	// pix.SnapshotClone, publishes immutable clones; pix.SnapshotTiles is
	// the zero-copy publish path (see pix.TileCloner for the aliasing
	// contract consumers must then honor).
	Snapshot pix.SnapshotMode
	// Publish selects when round snapshots are built and published. The
	// default, core.PublishEveryRound, publishes at every round boundary.
	Publish core.PublishPolicy
	// OnSnapshot, if non-nil, is invoked after each publish with the
	// number of output pixels computed so far and the published image.
	// It runs on the stage goroutine; under pix.SnapshotTiles it must not
	// retain img past the call.
	OnSnapshot func(processed int, img *pix.Image)
}

// StorageConfig configures the simulated approximate input storage.
type StorageConfig struct {
	// Prob is the per-bit read upset probability.
	Prob float64
	// Seed makes the fault sequence reproducible.
	Seed uint64
}

func (cfg Config) withDefaults() Config {
	if cfg.KernelSize == 0 {
		cfg.KernelSize = 9
	}
	if cfg.PixelBits == 0 {
		cfg.PixelBits = 8
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	return cfg
}

func (cfg Config) validate(in *pix.Image) error {
	if in.C != 1 {
		return fmt.Errorf("conv2d: input must be grayscale, got %d channels", in.C)
	}
	if cfg.KernelSize < 1 || cfg.KernelSize%2 == 0 {
		return fmt.Errorf("conv2d: kernel size %d must be odd and positive", cfg.KernelSize)
	}
	if cfg.PixelBits < 1 || cfg.PixelBits > 8 {
		return fmt.Errorf("conv2d: pixel precision %d out of range [1,8]", cfg.PixelBits)
	}
	if cfg.Workers < 1 {
		return fmt.Errorf("conv2d: workers %d must be positive", cfg.Workers)
	}
	if cfg.Storage != nil && (cfg.Storage.Prob < 0 || cfg.Storage.Prob > 1) {
		return fmt.Errorf("conv2d: storage probability %v out of range", cfg.Storage.Prob)
	}
	if cfg.Kernel != Box && cfg.Kernel != Gaussian {
		return fmt.Errorf("conv2d: unknown kernel %d", cfg.Kernel)
	}
	return nil
}

// kernelWeights returns the separable 1D weight row for the kernel and its
// total weight: all-ones for Box, the binomial (Pascal) row for Gaussian.
func kernelWeights(k Kernel, size int) ([]int64, int64) {
	w := make([]int64, size)
	if k == Box {
		for i := range w {
			w[i] = 1
		}
		return w, int64(size)
	}
	w[0] = 1
	for i := 1; i < size; i++ {
		for j := i; j > 0; j-- {
			w[j] += w[j-1]
		}
	}
	var total int64
	for _, v := range w {
		total += v
	}
	return w, total
}

// reader abstracts how the convolution fetches input pixels: directly, with
// reduced precision, or through approximate storage.
type reader struct {
	img  *pix.Image
	arr  *store.Array // nil for reliable storage
	drop uint         // low bits to mask off
}

func (r *reader) at(x, y int) int32 {
	var v int32
	if r.arr != nil {
		v = r.arr.Read(y*r.img.W + x)
	} else {
		v = r.img.Gray(x, y)
	}
	return fixpoint.TruncateLow(v, r.drop)
}

// convolvePixel computes the filtered value of output pixel (x, y): the
// rounded weighted mean of the kernel window (separable weights), clamping
// coordinates at the borders.
//
// The common case — reliable full-precision reads with the window fully
// inside the image — takes a fast path over the raw pixel rows. Both paths
// compute the same integer sum (the fast path merely re-associates it as
// Σ_dy wy·(Σ_dx wx·v), exact in int64), so outputs are bit-identical.
// Reads through approximate storage always take the slow path: the fault
// stream of store.Array is stateful, so the read sequence must stay
// exactly as it was.
//
//anytime:hotpath
func convolvePixel(r *reader, weights []int64, wsum int64, w, h, half int, x, y int) int32 {
	if r.arr == nil && r.drop == 0 && x >= half && y >= half && x+half < w && y+half < h {
		return convolveInterior(r.img.Pix, weights, wsum, w, half, x, y)
	}
	var sum int64
	for dy := -half; dy <= half; dy++ {
		yy := clampCoord(y+dy, h)
		wy := weights[dy+half]
		for dx := -half; dx <= half; dx++ {
			xx := clampCoord(x+dx, w)
			sum += wy * weights[dx+half] * int64(r.at(xx, yy))
		}
	}
	total := wsum * wsum
	return int32((sum + total/2) / total)
}

// convolveInterior is convolvePixel's hot path: no clamping, no reader
// indirection. Each kernel row is re-sliced once (one bounds check per
// row, eliminated inside the loop by the full-slice expression) and the
// row sum is unrolled four wide so the multiply-accumulate chains
// pipeline.
//
//anytime:hotpath
func convolveInterior(px []int32, weights []int64, wsum int64, w, half, x, y int) int32 {
	size := 2*half + 1
	weights = weights[:size:size]
	var sum int64
	base := (y-half)*w + x - half
	for dy := 0; dy < size; dy++ {
		row := px[base : base+size : base+size]
		var rs int64
		dx := 0
		for ; dx+4 <= size; dx += 4 {
			rs += weights[dx]*int64(row[dx]) +
				weights[dx+1]*int64(row[dx+1]) +
				weights[dx+2]*int64(row[dx+2]) +
				weights[dx+3]*int64(row[dx+3])
		}
		for ; dx < size; dx++ {
			rs += weights[dx] * int64(row[dx])
		}
		sum += weights[dy] * rs
		base += w
	}
	total := wsum * wsum
	return int32((sum + total/2) / total)
}

func clampCoord(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// Precise computes the baseline blurred image in parallel over row bands,
// using the same per-pixel computation as the automaton (with reliable
// full-precision reads regardless of cfg's approximation settings).
func Precise(in *pix.Image, cfg Config) (*pix.Image, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	out, err := pix.NewGray(in.W, in.H)
	if err != nil {
		return nil, err
	}
	half := cfg.KernelSize / 2
	weights, wsum := kernelWeights(cfg.Kernel, cfg.KernelSize)
	par.Rows(in.H, cfg.Workers, func(y0, y1 int) {
		band := reader{img: in}
		for y := y0; y < y1; y++ {
			for x := 0; x < in.W; x++ {
				out.SetGray(x, y, convolvePixel(&band, weights, wsum, in.W, in.H, half, x, y))
			}
		}
	})
	return out, nil
}

// Run is a constructed 2dconv anytime automaton with its output buffer.
type Run struct {
	Automaton *core.Automaton
	Out       *core.Buffer[*pix.Image]
}

// New builds the 2dconv anytime automaton: one diffusive stage that
// computes output pixels in 2D tree order, publishing progressively
// higher-resolution approximations (unvisited pixels are hold-filled from
// their tree ancestors) and finally the precise blurred image.
func New(in *pix.Image, cfg Config) (*Run, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	ord, err := perm.Tree2D(in.H, in.W)
	if err != nil {
		return nil, err
	}
	working, err := pix.NewGray(in.W, in.H)
	if err != nil {
		return nil, err
	}
	snap, err := pix.NewSnapshotter(working, cfg.Workers, cfg.Snapshot)
	if err != nil {
		return nil, err
	}
	half := cfg.KernelSize / 2
	weights, wsum := kernelWeights(cfg.Kernel, cfg.KernelSize)
	drop := uint(8 - cfg.PixelBits)

	// One reader per worker: the approximate storage array is stateful and
	// not concurrency-safe, so each worker reads through a private copy,
	// modelling per-thread access to its own faulty bank.
	readers := make([]*reader, cfg.Workers)
	for w := range readers {
		readers[w] = &reader{img: in, drop: drop}
		if cfg.Storage != nil {
			arr, err := store.NewArray(in.Pix, 8, cfg.Storage.Prob, cfg.Storage.Seed+uint64(w)*0x9E3779B9)
			if err != nil {
				return nil, err
			}
			readers[w].arr = arr
		}
	}

	out := core.NewBuffer[*pix.Image]("conv2d", nil)
	a := core.New()
	err = a.AddStage("convolve", func(c *core.Context) error {
		return sampling.MapWorkers(c, out, ord,
			func(worker, dst int) error {
				x, y := dst%in.W, dst/in.W
				working.SetGray(x, y, convolvePixel(readers[worker], weights, wsum, in.W, in.H, half, x, y))
				snap.Mark(worker, dst)
				return nil
			},
			func(processed int) (*pix.Image, error) {
				img, err := snap.Snapshot()
				if err != nil {
					return nil, err
				}
				if cfg.OnSnapshot != nil {
					cfg.OnSnapshot(processed, img)
				}
				return img, nil
			},
			core.RoundConfig{Granularity: cfg.Granularity, Workers: cfg.Workers, Policy: cfg.Publish})
	})
	if err != nil {
		return nil, err
	}
	// Warm-pool support: rewinding the snapshotter mask and output buffer is
	// all the per-run state this app has (the tree permutation, kernel
	// weights, and working arena are input-independent and reusable as-is).
	a.OnReset(func() {
		snap.Reset()
		out.Reset()
	})
	// Warm-start support: a cached output frame — optionally a pix.SeedFrame
	// carrying the stale tiles of a delta start — becomes the starting
	// published state. The run still computes every pixel from the input, so
	// the forced-precise final is bit-identical to a cold run's.
	a.OnSeed(func(seed any, v core.Version) error {
		img, stale, err := pix.AsSeedFrame(seed, in.W, in.H, 1)
		if err != nil {
			return fmt.Errorf("conv2d: %w", err)
		}
		img.CloneInto(working)
		if err := snap.Seed(stale); err != nil {
			return err
		}
		first, err := snap.Snapshot()
		if err != nil {
			return err
		}
		return out.Seed(first, v)
	})
	return &Run{Automaton: a, Out: out}, nil
}
