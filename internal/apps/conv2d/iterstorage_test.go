package conv2d

import (
	"context"
	"math"
	"testing"

	"anytime/internal/metrics"
	"anytime/internal/pix"
	"anytime/internal/store"
)

func TestIterStorageConfigValidation(t *testing.T) {
	in := testImage(t, 16, 16)
	bad := []IterStorageConfig{
		{KernelSize: 4},
		{Levels: []store.VoltageLevel{}},
		{Levels: []store.VoltageLevel{{UpsetProb: 1e-3}}}, // final not precise
		{Levels: []store.VoltageLevel{ // accuracy decreases
			{UpsetProb: 1e-7}, {UpsetProb: 1e-3}, {UpsetProb: 0},
		}},
		{Levels: []store.VoltageLevel{{UpsetProb: 2}, {UpsetProb: 0}}},
	}
	for i, cfg := range bad {
		// Force non-nil Levels to survive withDefaults for the cases that
		// set them.
		if _, err := NewIterativeStorage(in, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	rgb := pix.MustNew(4, 4, 3)
	if _, err := NewIterativeStorage(rgb, IterStorageConfig{}); err == nil {
		t.Error("RGB input accepted")
	}
}

// TestIterStorageFinalIsExact: the ladder's last (nominal) pass must be
// bit-exact with the precise baseline despite corruption injected by the
// earlier low-voltage passes — this is exactly what the flush between
// intermediate computations guarantees.
func TestIterStorageFinalIsExact(t *testing.T) {
	in := testImage(t, 48, 48)
	want, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewIterativeStorage(in, IterStorageConfig{
		Levels: []store.VoltageLevel{
			{Name: "very-drowsy", UpsetProb: 1e-2, PowerSave: 0.9},
			{Name: "drowsy", UpsetProb: 1e-4, PowerSave: 0.6},
			{Name: "nominal", UpsetProb: 0},
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, ok := run.Out.Latest()
	if !ok || !snap.Final {
		t.Fatal("no final snapshot")
	}
	if !snap.Value.Equal(want) {
		t.Error("final ladder output differs from precise baseline")
	}
}

// TestIterStoragePassAccuracyIncreases: each pass's SNR (vs the precise
// output) must improve up the voltage ladder, ending at +Inf.
func TestIterStoragePassAccuracyIncreases(t *testing.T) {
	in := testImage(t, 64, 64)
	ref, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var snrs []float64
	run, err := NewIterativeStorage(in, IterStorageConfig{
		Levels: []store.VoltageLevel{
			{Name: "deep", UpsetProb: 3e-3, PowerSave: 0.9},
			{Name: "mid", UpsetProb: 1e-4, PowerSave: 0.6},
			{Name: "nominal", UpsetProb: 0},
		},
		Seed: 4,
		OnPass: func(level store.VoltageLevel, img *pix.Image) {
			db, err := metrics.SNR(ref.Pix, img.Pix)
			if err != nil {
				t.Error(err)
				return
			}
			snrs = append(snrs, db)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(snrs) != 3 {
		t.Fatalf("observed %d passes", len(snrs))
	}
	if !(snrs[0] < snrs[1]) {
		t.Errorf("accuracy did not increase up the ladder: %v", snrs)
	}
	if !math.IsInf(snrs[2], 1) {
		t.Errorf("nominal pass SNR = %v, want +Inf", snrs[2])
	}
}

// TestIterStorageDefaultLadder runs the store.DefaultLevels ladder end to
// end; the default's tiny probabilities may inject no faults on a small
// image, but the run must still complete exactly.
func TestIterStorageDefaultLadder(t *testing.T) {
	in := testImage(t, 32, 32)
	want, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewIterativeStorage(in, IterStorageConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, _ := run.Out.Latest()
	if !snap.Value.Equal(want) {
		t.Error("default ladder final != precise")
	}
}

func TestLadderEnergy(t *testing.T) {
	if got := LadderEnergy(nil); got != 0 {
		t.Errorf("empty ladder energy = %v", got)
	}
	levels := []store.VoltageLevel{
		{PowerSave: 0.9}, {PowerSave: 0.5}, {PowerSave: 0},
	}
	// (0.1 + 0.5 + 1.0) / 3 = 0.5333…
	want := (0.1 + 0.5 + 1.0) / 3
	if got := LadderEnergy(levels); math.Abs(got-want) > 1e-12 {
		t.Errorf("LadderEnergy = %v, want %v", got, want)
	}
	// A ladder with savings must cost less than all-nominal execution.
	if LadderEnergy(levels) >= 1 {
		t.Error("ladder reports no energy saving")
	}
}
