package kmeans

import (
	"context"
	"math"
	"testing"

	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
)

func testImage(t *testing.T, w, h int) *pix.Image {
	t.Helper()
	im, err := pix.SyntheticRGB(w, h, 33)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestConfigValidation(t *testing.T) {
	in := testImage(t, 8, 8)
	bad := []Config{
		{K: -1},
		{Iters: -1},
		{Workers: -1},
		{ClusterGranularity: -5},
	}
	for _, cfg := range bad {
		if _, err := Precise(in, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		if _, err := New(in, cfg); err == nil {
			t.Errorf("config %+v accepted by New", cfg)
		}
	}
	gray := pix.MustNew(4, 4, 1)
	if _, err := Precise(gray, Config{}); err == nil {
		t.Error("grayscale input accepted")
	}
	empty := pix.MustNew(0, 0, 3)
	if _, err := Precise(empty, Config{}); err == nil {
		t.Error("empty image accepted")
	}
}

func TestNearestTieBreaksLowIndex(t *testing.T) {
	cents := []Centroid{{10, 0, 0}, {10, 0, 0}, {0, 0, 0}}
	if got := nearest(cents, 10, 0, 0); got != 0 {
		t.Errorf("tie broken to %d, want 0", got)
	}
	if got := nearest(cents, 1, 0, 0); got != 2 {
		t.Errorf("nearest = %d, want 2", got)
	}
}

func TestUpdateCentroidsEmptyClusterKeepsPrev(t *testing.T) {
	prev := []Centroid{{1, 2, 3}, {4, 5, 6}}
	sum := [][3]int64{{100, 200, 300}, {0, 0, 0}}
	count := []int64{10, 0}
	next := updateCentroids(prev, sum, count)
	if next[0] != (Centroid{10, 20, 30}) {
		t.Errorf("next[0] = %v", next[0])
	}
	if next[1] != prev[1] {
		t.Errorf("empty cluster moved: %v", next[1])
	}
}

func TestPreciseSeparatesDistinctColors(t *testing.T) {
	// An image of two well-separated colors with k=2 must converge to
	// those colors.
	in := pix.MustNew(16, 16, 3)
	for p := 0; p < in.Pixels(); p++ {
		if p < in.Pixels()/2 {
			in.Pix[p*3], in.Pix[p*3+1], in.Pix[p*3+2] = 250, 10, 10
		} else {
			in.Pix[p*3], in.Pix[p*3+1], in.Pix[p*3+2] = 10, 10, 250
		}
	}
	cents, err := PreciseModel(in, Config{K: 2, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := map[Centroid]bool{}
	for _, c := range cents {
		found[c] = true
	}
	if !found[Centroid{250, 10, 10}] || !found[Centroid{10, 10, 250}] {
		t.Errorf("centroids %v did not converge to the two colors", cents)
	}
}

func TestPreciseParallelMatchesSerial(t *testing.T) {
	in := testImage(t, 32, 24)
	a, err := Precise(in, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Precise(in, Config{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("parallel baseline differs from serial")
	}
}

func TestAutomatonFinalEqualsPrecise(t *testing.T) {
	in := testImage(t, 32, 32)
	want, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantModel, err := PreciseModel(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		run, err := New(in, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		model, ok := run.ModelBuf.Latest()
		if !ok || !model.Final {
			t.Fatal("no final model")
		}
		for i, c := range model.Value.Centroids {
			if c != wantModel[i] {
				t.Errorf("workers=%d: centroid %d = %v, want %v", workers, i, c, wantModel[i])
			}
		}
		snap, ok := run.Out.Latest()
		if !ok || !snap.Final {
			t.Fatal("no final output")
		}
		if !snap.Value.Equal(want) {
			t.Errorf("workers=%d: final output differs from precise baseline", workers)
		}
	}
}

func TestModelIterationsProgress(t *testing.T) {
	in := testImage(t, 32, 32)
	var iters []int
	run, err := New(in, Config{Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	run.ModelBuf.OnPublish(func(s core.Snapshot[*Model]) { iters = append(iters, s.Value.Iter) })
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("no model snapshots")
	}
	for i := 1; i < len(iters); i++ {
		if iters[i] < iters[i-1] {
			t.Errorf("iteration regressed: %v", iters)
		}
	}
	if iters[len(iters)-1] != 4 {
		t.Errorf("last snapshot from iteration %d, want 4", iters[len(iters)-1])
	}
}

func TestOutputSNRTrendsToInf(t *testing.T) {
	in := testImage(t, 32, 32)
	want, err := Precise(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var snrs []float64
	run, err := New(in, Config{
		OnSnapshot: func(img *pix.Image) {
			db, err := metrics.SNR(want.Pix, img.Pix)
			if err != nil {
				t.Error(err)
				return
			}
			snrs = append(snrs, db)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(snrs) == 0 {
		t.Fatal("no output snapshots")
	}
	if !math.IsInf(snrs[len(snrs)-1], 1) {
		t.Errorf("final SNR = %v, want +Inf", snrs[len(snrs)-1])
	}
}

func TestKGreaterThanPixels(t *testing.T) {
	in := testImage(t, 2, 2)
	want, err := Precise(in, Config{K: 9, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := New(in, Config{K: 9, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, _ := run.Out.Latest()
	if !snap.Value.Equal(want) {
		t.Error("k>pixels: final != precise")
	}
}

func TestSinglePixel(t *testing.T) {
	in := testImage(t, 1, 1)
	want, err := Precise(in, Config{K: 1, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := New(in, Config{K: 1, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, _ := run.Out.Latest()
	if !snap.Value.Equal(want) {
		t.Error("1x1: final != precise")
	}
}
