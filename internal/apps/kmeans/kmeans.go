// Package kmeans implements the k-means clustering benchmark of the paper's
// evaluation (§IV-A2, from AxBench): clustering the pixels of an RGB image
// in color space. The anytime automaton has two stages in an asynchronous
// pipeline, following the paper:
//
//  1. cluster — diffusive; samples pixels with a tree permutation, assigns
//     each to its nearest centroid, colors the output pixel with that
//     centroid, and accumulates thread-privatized partial centroid sums.
//     Each Lloyd iteration is one diffusive pass; output snapshots are
//     published throughout, colored with progressively better centroids.
//  2. reduce — not anytime; reduces the thread-privatized partials of a
//     completed pass into the next iteration's centroids.
//
// After the final reduction the cluster stage runs one more coloring pass
// with the final centroids, so the automaton's last snapshot is bit-exact
// with the fixed-iteration Lloyd baseline.
package kmeans

import (
	"fmt"
	"sync"

	"anytime/internal/core"
	"anytime/internal/perm"
	"anytime/internal/pix"
)

// Config parameterizes the baseline and the automaton.
type Config struct {
	// K is the number of clusters. Default 6.
	K int
	// Iters is the number of Lloyd iterations. Default 8.
	Iters int
	// Workers is the number of sampling workers per stage. Default 1.
	Workers int
	// ClusterGranularity is the number of pixels sampled per published
	// output snapshot. Default pixels/2.
	ClusterGranularity int
	// Snapshot selects how the cluster stage renders round snapshots. The
	// default, pix.SnapshotClone, publishes immutable clones;
	// pix.SnapshotTiles is the zero-copy publish path (see pix.TileCloner
	// for the aliasing contract consumers must then honor).
	Snapshot pix.SnapshotMode
	// Publish selects when round snapshots are built and published.
	// Default core.PublishEveryRound.
	Publish core.PublishPolicy
	// OnSnapshot, if non-nil, is invoked after each publish of the
	// rendered output image. Under pix.SnapshotTiles it must not retain
	// img past the call.
	OnSnapshot func(img *pix.Image)
}

func (cfg Config) withDefaults(pixels int) Config {
	if cfg.K == 0 {
		cfg.K = 6
	}
	if cfg.Iters == 0 {
		cfg.Iters = 8
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.ClusterGranularity == 0 {
		cfg.ClusterGranularity = pixels / 2
		if cfg.ClusterGranularity < 1 {
			cfg.ClusterGranularity = 1
		}
	}
	return cfg
}

func (cfg Config) validate(in *pix.Image) error {
	if in.C != 3 {
		return fmt.Errorf("kmeans: input must be RGB, got %d channels", in.C)
	}
	if in.Pixels() == 0 {
		return fmt.Errorf("kmeans: empty image")
	}
	if cfg.K < 1 {
		return fmt.Errorf("kmeans: k %d must be positive", cfg.K)
	}
	if cfg.Iters < 1 {
		return fmt.Errorf("kmeans: iterations %d must be positive", cfg.Iters)
	}
	if cfg.Workers < 1 {
		return fmt.Errorf("kmeans: workers %d must be positive", cfg.Workers)
	}
	if cfg.ClusterGranularity < 1 {
		return fmt.Errorf("kmeans: granularity must be positive")
	}
	return nil
}

// Centroid is one cluster center in RGB space.
type Centroid [3]int32

// Model is the reduce stage's published output: the centroids after a
// completed Lloyd iteration.
type Model struct {
	Centroids []Centroid
	Iter      int // 1-based Lloyd iteration that produced these centroids
}

// Partials is the cluster stage's published output to the reduce stage:
// the merged per-worker accumulators of one completed pass.
type Partials struct {
	Sum   [][3]int64
	Count []int64
	Iter  int // 1-based Lloyd iteration these partials belong to
}

// accum is one worker's private partial sums for a pass.
type accum struct {
	sum   [][3]int64
	count []int64
}

func newAccum(k int) *accum {
	return &accum{sum: make([][3]int64, k), count: make([]int64, k)}
}

func (a *accum) reset() {
	for i := range a.sum {
		a.sum[i] = [3]int64{}
		a.count[i] = 0
	}
}

// nearest returns the index of the centroid closest to pixel p (squared
// Euclidean distance in RGB space, lowest index on ties).
func nearest(cents []Centroid, r, g, b int32) int {
	best := 0
	bestD := int64(1) << 62
	for i, c := range cents {
		dr := int64(r - c[0])
		dg := int64(g - c[1])
		db := int64(b - c[2])
		d := dr*dr + dg*dg + db*db
		if d < bestD {
			bestD = d
			best = i
		}
	}
	return best
}

// initCentroids picks k deterministic seed centroids from evenly spaced
// pixels of the image.
func initCentroids(in *pix.Image, k int) []Centroid {
	n := in.Pixels()
	cents := make([]Centroid, k)
	for i := range cents {
		idx := (i*n + n/2) / k % n
		cents[i] = Centroid{in.Pix[idx*3], in.Pix[idx*3+1], in.Pix[idx*3+2]}
	}
	return cents
}

// updateCentroids derives the next centroids from accumulated sums; empty
// clusters keep their previous center.
func updateCentroids(prev []Centroid, sum [][3]int64, count []int64) []Centroid {
	next := make([]Centroid, len(prev))
	for i := range next {
		if count[i] == 0 {
			next[i] = prev[i]
			continue
		}
		for c := 0; c < 3; c++ {
			v := sum[i][c]
			n := count[i]
			// Round to nearest (values are non-negative pixel sums).
			next[i][c] = int32((v + n/2) / n)
		}
	}
	return next
}

// render colors every pixel with its nearest centroid's color.
func render(in *pix.Image, cents []Centroid) (*pix.Image, error) {
	out, err := pix.NewRGB(in.W, in.H)
	if err != nil {
		return nil, err
	}
	for p := 0; p < in.Pixels(); p++ {
		writeRendered(in, out, cents, p)
	}
	return out, nil
}

func writeRendered(in, out *pix.Image, cents []Centroid, p int) {
	r, g, b := in.Pix[p*3], in.Pix[p*3+1], in.Pix[p*3+2]
	c := cents[nearest(cents, r, g, b)]
	out.Pix[p*3] = c[0]
	out.Pix[p*3+1] = c[1]
	out.Pix[p*3+2] = c[2]
}

// PreciseModel runs the baseline fixed-iteration Lloyd algorithm and
// returns the final centroids.
func PreciseModel(in *pix.Image, cfg Config) ([]Centroid, error) {
	cfg = cfg.withDefaults(in.Pixels())
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	cents := initCentroids(in, cfg.K)
	n := in.Pixels()
	for t := 0; t < cfg.Iters; t++ {
		acc := newAccum(cfg.K)
		accumulateRange(in, cents, acc, 0, n, cfg.Workers)
		cents = updateCentroids(cents, acc.sum, acc.count)
	}
	return cents, nil
}

// accumulateRange assigns pixels [lo, hi) and accumulates into acc,
// splitting across workers with private partials merged at the end.
func accumulateRange(in *pix.Image, cents []Centroid, acc *accum, lo, hi, workers int) {
	if workers <= 1 {
		for p := lo; p < hi; p++ {
			r, g, b := in.Pix[p*3], in.Pix[p*3+1], in.Pix[p*3+2]
			i := nearest(cents, r, g, b)
			acc.sum[i][0] += int64(r)
			acc.sum[i][1] += int64(g)
			acc.sum[i][2] += int64(b)
			acc.count[i]++
		}
		return
	}
	parts := make([]*accum, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		parts[w] = newAccum(len(cents))
		go func(w int) {
			defer wg.Done()
			p0 := lo + (hi-lo)*w/workers
			p1 := lo + (hi-lo)*(w+1)/workers
			accumulateRange(in, cents, parts[w], p0, p1, 1)
		}(w)
	}
	wg.Wait()
	for _, part := range parts {
		for i := range acc.sum {
			acc.sum[i][0] += part.sum[i][0]
			acc.sum[i][1] += part.sum[i][1]
			acc.sum[i][2] += part.sum[i][2]
			acc.count[i] += part.count[i]
		}
	}
}

// Precise computes the baseline output image: fixed-iteration Lloyd
// clustering followed by rendering every pixel with its centroid color.
func Precise(in *pix.Image, cfg Config) (*pix.Image, error) {
	cents, err := PreciseModel(in, cfg)
	if err != nil {
		return nil, err
	}
	return render(in, cents)
}

// Run is a constructed kmeans anytime automaton with its buffers.
type Run struct {
	Automaton *core.Automaton
	// ModelBuf carries the reduce stage's centroid versions, one per
	// completed Lloyd iteration.
	ModelBuf *core.Buffer[*Model]
	// Out carries the progressively colored output image.
	Out *core.Buffer[*pix.Image]
}

// New builds the two-stage kmeans automaton described in the package
// comment.
func New(in *pix.Image, cfg Config) (*Run, error) {
	cfg = cfg.withDefaults(in.Pixels())
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	n := in.Pixels()
	ord, err := perm.Tree2D(in.H, in.W)
	if err != nil {
		return nil, err
	}
	partialsBuf := core.NewBuffer[*Partials]("kmeans-partials", nil)
	modelBuf := core.NewBuffer[*Model]("kmeans-model", nil)
	out := core.NewBuffer[*pix.Image]("kmeans", nil)
	a := core.New()

	working, err := pix.NewRGB(in.W, in.H)
	if err != nil {
		return nil, err
	}
	snap, err := pix.NewSnapshotter(working, cfg.Workers, cfg.Snapshot)
	if err != nil {
		return nil, err
	}
	publishSnapshot := func() (*pix.Image, error) {
		img, err := snap.Snapshot()
		if err != nil {
			return nil, err
		}
		if cfg.OnSnapshot != nil {
			cfg.OnSnapshot(img)
		}
		return img, nil
	}
	cfgWorkers := cfg.Workers

	// Stage 1: diffusive clustering + coloring. Each Lloyd iteration is a
	// pass over the tree-ordered pixels with worker-private partials; the
	// output pixel is colored with the current centroid at assignment time,
	// so the whole-application output is available early and improves as
	// both sampling resolution and centroid quality increase.
	if err := a.AddStage("cluster", func(c *core.Context) error {
		cents := initCentroids(in, cfg.K)
		parts := make([]*accum, cfgWorkers)
		for w := range parts {
			parts[w] = newAccum(cfg.K)
		}
		for t := 1; t <= cfg.Iters; t++ {
			for _, p := range parts {
				p.reset()
			}
			prev := cents
			err := core.DiffusiveBatch(c, out, n,
				func(worker, lo, hi int) error {
					acc := parts[worker]
					for pos := lo; pos < hi; pos++ {
						p := ord.At(pos)
						r, g, b := in.Pix[p*3], in.Pix[p*3+1], in.Pix[p*3+2]
						i := nearest(prev, r, g, b)
						acc.sum[i][0] += int64(r)
						acc.sum[i][1] += int64(g)
						acc.sum[i][2] += int64(b)
						acc.count[i]++
						ci := prev[i]
						working.Pix[p*3] = ci[0]
						working.Pix[p*3+1] = ci[1]
						working.Pix[p*3+2] = ci[2]
						snap.Mark(worker, p)
					}
					return nil
				},
				func(processed int) (*pix.Image, error) { return publishSnapshot() },
				core.RoundConfig{Granularity: cfg.ClusterGranularity, Workers: cfgWorkers, Policy: cfg.Publish},
				false)
			if err != nil {
				return err
			}
			// Hand the completed pass's partials to the reduce stage and
			// wait for the next iteration's centroids.
			merged := &Partials{Sum: make([][3]int64, cfg.K), Count: make([]int64, cfg.K), Iter: t}
			for _, part := range parts {
				for i := 0; i < cfg.K; i++ {
					merged.Sum[i][0] += part.sum[i][0]
					merged.Sum[i][1] += part.sum[i][1]
					merged.Sum[i][2] += part.sum[i][2]
					merged.Count[i] += part.count[i]
				}
			}
			if _, err := partialsBuf.Publish(merged, t == cfg.Iters); err != nil {
				return err
			}
			model, err2 := modelBuf.WaitNewer(c.Context(), core.Version(t-1))
			if err2 != nil {
				return core.ErrStopped
			}
			cents = model.Value.Centroids
		}
		// Final pass: color every pixel with the final centroids, exactly
		// as the baseline renders its output.
		return core.DiffusiveBatch(c, out, n,
			func(worker, lo, hi int) error {
				for pos := lo; pos < hi; pos++ {
					p := ord.At(pos)
					writeRendered(in, working, cents, p)
					snap.Mark(worker, p)
				}
				return nil
			},
			func(processed int) (*pix.Image, error) { return publishSnapshot() },
			core.RoundConfig{Granularity: cfg.ClusterGranularity, Workers: cfgWorkers, Policy: cfg.Publish},
			true)
	}); err != nil {
		return nil, err
	}

	// Stage 2 (not anytime): reduce the thread-privatized partials of a
	// completed pass into the next centroids. The cluster stage's
	// publish-then-wait handshake makes the exchange lock-step, so every
	// partials version is consumed exactly once.
	if err := a.AddStage("reduce", func(c *core.Context) error {
		prev := initCentroids(in, cfg.K)
		return core.AsyncConsume(c, partialsBuf, func(s core.Snapshot[*Partials]) error {
			prev = updateCentroids(prev, s.Value.Sum, s.Value.Count)
			_, err := modelBuf.Publish(&Model{Centroids: prev, Iter: s.Value.Iter}, s.Final)
			return err
		})
	}); err != nil {
		return nil, err
	}
	// Warm-pool support. Both stages create their iteration state (centroids,
	// per-worker accumulators) inside the stage function, so a restart
	// rebuilds it; what persists across runs is the three buffers and the
	// snapshotter. Rewinding the buffers also restarts the version numbering
	// the cluster↔reduce WaitNewer handshake counts on.
	a.OnReset(func() {
		snap.Reset()
		partialsBuf.Reset()
		modelBuf.Reset()
		out.Reset()
	})
	// Warm-start support: seed only the output buffer — the
	// partials/model handshake must start from version 1 (the cluster stage
	// waits on exact model versions per iteration), and every pixel is
	// recolored each pass, so a seeded run's precise final is unchanged.
	a.OnSeed(func(seed any, v core.Version) error {
		img, stale, err := pix.AsSeedFrame(seed, in.W, in.H, 3)
		if err != nil {
			return fmt.Errorf("kmeans: %w", err)
		}
		img.CloneInto(working)
		if err := snap.Seed(stale); err != nil {
			return err
		}
		first, err := snap.Snapshot()
		if err != nil {
			return err
		}
		return out.Seed(first, v)
	})
	return &Run{Automaton: a, ModelBuf: modelBuf, Out: out}, nil
}
