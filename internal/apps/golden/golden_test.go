// Package golden pins the deterministic outputs of every benchmark
// application with content hashes: for a fixed synthetic input and
// configuration, both the precise baseline and the automaton's final
// snapshot must reproduce bit-for-bit across refactorings. An intentional
// algorithm change must update these constants deliberately.
package golden

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/debayer"
	"anytime/internal/apps/dwt53"
	"anytime/internal/apps/histeq"
	"anytime/internal/apps/kmeans"
	"anytime/internal/core"
	"anytime/internal/pix"
)

func hashImage(im *pix.Image) string {
	h := sha256.New()
	buf := make([]byte, 4)
	for _, v := range im.Pix {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func finalOf(t *testing.T, a *core.Automaton, out *core.Buffer[*pix.Image]) *pix.Image {
	t.Helper()
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, ok := out.Latest()
	if !ok || !snap.Final {
		t.Fatal("no final snapshot")
	}
	return snap.Value
}

// The recorded digests. Regenerate by running the tests with -run Golden
// and copying the reported values after a deliberate behavioral change.
const (
	goldenConv2D  = "3e041fa0334ef186e41dce2ad30c666a0c1cf134e1dff331b6b635bf8518818d"
	goldenHisteq  = "20a8a861b43b10bc1e8079781d8a7f415d2e03cc392b65e4a5ababa15e1dcc50"
	goldenDWT53   = "76baa7e805cb28c2a4a053b1e799afb5c91e0c1188f56d8d6cf3fc866e72c81a"
	goldenDebayer = "4f3b48678ffd14d5cc67e21d680c5474b7e66b78240d42a1d9282509a5067552"
	goldenKmeans  = "1d4a4a8f835a51bb9b64864b200635aaa0fab1faa57e35e7df1d98132b7f723f"
)

func check(t *testing.T, name, want string, precise, automaton *pix.Image) {
	t.Helper()
	if !precise.Equal(automaton) {
		t.Fatalf("%s: automaton final differs from precise baseline", name)
	}
	got := hashImage(precise)
	if got != want {
		t.Errorf("%s: golden digest changed:\n  got  %s\n  want %s\n(update the constant if the change is deliberate)", name, got, want)
	}
}

func TestGoldenConv2D(t *testing.T) {
	in, err := pix.SyntheticGray(96, 96, 7)
	if err != nil {
		t.Fatal(err)
	}
	precise, err := conv2d.Precise(in, conv2d.Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := conv2d.New(in, conv2d.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	check(t, "conv2d", goldenConv2D, precise, finalOf(t, run.Automaton, run.Out))
}

func TestGoldenHisteq(t *testing.T) {
	in, err := pix.SyntheticGray(96, 96, 7)
	if err != nil {
		t.Fatal(err)
	}
	precise, err := histeq.Precise(in, histeq.Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := histeq.New(in, histeq.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	check(t, "histeq", goldenHisteq, precise, finalOf(t, run.Automaton, run.Out))
}

func TestGoldenDWT53(t *testing.T) {
	in, err := pix.SyntheticGray(96, 96, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The lossless transform reconstructs the input, so the interesting
	// golden is the coefficient plane of the precise forward transform.
	coef, err := dwt53.Forward(in, dwt53.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := dwt53.New(in, dwt53.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := finalOf(t, run.Automaton, run.Out)
	if !out.Equal(in) {
		t.Fatal("dwt53 final reconstruction differs from input")
	}
	got := hashImage(coef)
	if got != goldenDWT53 {
		t.Errorf("dwt53 coefficient digest changed:\n  got  %s\n  want %s", got, goldenDWT53)
	}
}

func TestGoldenDebayer(t *testing.T) {
	rgb, err := pix.SyntheticRGB(96, 96, 7)
	if err != nil {
		t.Fatal(err)
	}
	in, err := pix.BayerGRBG(rgb)
	if err != nil {
		t.Fatal(err)
	}
	precise, err := debayer.Precise(in, debayer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := debayer.New(in, debayer.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	check(t, "debayer", goldenDebayer, precise, finalOf(t, run.Automaton, run.Out))
}

func TestGoldenKmeans(t *testing.T) {
	in, err := pix.SyntheticRGB(96, 96, 7)
	if err != nil {
		t.Fatal(err)
	}
	precise, err := kmeans.Precise(in, kmeans.Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := kmeans.New(in, kmeans.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	check(t, "kmeans", goldenKmeans, precise, finalOf(t, run.Automaton, run.Out))
}
