package golden

import (
	"context"
	"sync"
	"testing"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/debayer"
	"anytime/internal/apps/dwt53"
	"anytime/internal/apps/histeq"
	"anytime/internal/apps/kmeans"
	"anytime/internal/core"
	"anytime/internal/pix"
)

// TestAllAppsConcurrently runs every benchmark automaton at the same time
// in one process (run with -race during development): the model's
// correctness must be independent of cross-automaton scheduling pressure.
func TestAllAppsConcurrently(t *testing.T) {
	gray, err := pix.SyntheticGray(48, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	rgb, err := pix.SyntheticRGB(48, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	mosaic, err := pix.BayerGRBG(rgb)
	if err != nil {
		t.Fatal(err)
	}

	type job struct {
		name string
		want *pix.Image
		a    *core.Automaton
		out  *core.Buffer[*pix.Image]
	}
	var jobs []job

	add := func(name string, want *pix.Image, a *core.Automaton, out *core.Buffer[*pix.Image], err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		jobs = append(jobs, job{name: name, want: want, a: a, out: out})
	}

	cw, err := conv2d.Precise(gray, conv2d.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := conv2d.New(gray, conv2d.Config{Workers: 2})
	add("conv2d", cw, cr.Automaton, cr.Out, err)

	hw, err := histeq.Precise(gray, histeq.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := histeq.New(gray, histeq.Config{Workers: 2})
	add("histeq", hw, hr.Automaton, hr.Out, err)

	dr, err := dwt53.New(gray, dwt53.Config{Workers: 2})
	add("dwt53", gray, dr.Automaton, dr.Out, err)

	bw, err := debayer.Precise(mosaic, debayer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	br, err := debayer.New(mosaic, debayer.Config{Workers: 2})
	add("debayer", bw, br.Automaton, br.Out, err)

	kw, err := kmeans.Precise(rgb, kmeans.Config{})
	if err != nil {
		t.Fatal(err)
	}
	kr, err := kmeans.New(rgb, kmeans.Config{Workers: 2})
	add("kmeans", kw, kr.Automaton, kr.Out, err)

	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			if err := j.a.Start(context.Background()); err != nil {
				t.Errorf("%s: %v", j.name, err)
				return
			}
			if err := j.a.Wait(); err != nil {
				t.Errorf("%s: %v", j.name, err)
				return
			}
			snap, ok := j.out.Latest()
			if !ok || !snap.Final {
				t.Errorf("%s: no final snapshot", j.name)
				return
			}
			if !snap.Value.Equal(j.want) {
				t.Errorf("%s: concurrent run differs from precise baseline", j.name)
			}
		}(j)
	}
	wg.Wait()
}

// TestPauseResumeUnderLoad pauses and resumes an automaton repeatedly while
// it runs; the final output must still be exact.
func TestPauseResumeUnderLoad(t *testing.T) {
	gray, err := pix.SyntheticGray(64, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := conv2d.Precise(gray, conv2d.Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := conv2d.New(gray, conv2d.Config{Workers: 2, Granularity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-run.Automaton.Done():
				return
			default:
			}
			run.Automaton.Pause()
			run.Automaton.Resume()
		}
	}()
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	<-done
	snap, _ := run.Out.Latest()
	if !snap.Value.Equal(want) {
		t.Error("pause/resume storm corrupted the final output")
	}
}
