package debayer

import (
	"testing"

	"anytime/internal/pix"
)

// The per-pixel bilinear interpolation is debayer's serving-path kernel;
// BENCH_kernels.json pins these numbers.

func benchMosaic(b *testing.B, w, h int) *pix.Image {
	b.Helper()
	rgb, err := pix.SyntheticRGB(w, h, 11)
	if err != nil {
		b.Fatal(err)
	}
	m, err := pix.BayerGRBG(rgb)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkInterpolateInterior is the hot case: all 3x3 neighbors in
// bounds, one pixel of each GRBG parity per iteration.
func BenchmarkInterpolateInterior(b *testing.B) {
	in := benchMosaic(b, 256, 256)
	var sink int32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := 64 + i%64*2
		r, g, bb := interpolate(in, x, 100)
		sink += r + g + bb
		r, g, bb = interpolate(in, x+1, 100)
		sink += r + g + bb
		r, g, bb = interpolate(in, x, 101)
		sink += r + g + bb
		r, g, bb = interpolate(in, x+1, 101)
		sink += r + g + bb
	}
	_ = sink
}

// BenchmarkInterpolateBorder clamps the neighborhood at the image edge —
// the slow path the interior fast path must not regress.
func BenchmarkInterpolateBorder(b *testing.B) {
	in := benchMosaic(b, 256, 256)
	var sink int32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, g, bb := interpolate(in, i%4, 0)
		sink += r + g + bb
	}
	_ = sink
}

// BenchmarkPrecise256 is the whole-image baseline pass (single worker).
func BenchmarkPrecise256(b *testing.B) {
	in := benchMosaic(b, 256, 256)
	b.SetBytes(int64(in.Pixels()) * 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Precise(in, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
