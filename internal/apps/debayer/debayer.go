// Package debayer implements the debayer benchmark of the paper's
// evaluation (§IV-A2): converting a single-sensor Bayer filter mosaic
// (GRBG layout) to a full RGB image by bilinear interpolation. Like 2dconv,
// its anytime automaton is a single diffusive stage using output sampling
// with a two-dimensional tree permutation (Figure 14).
package debayer

import (
	"fmt"

	"anytime/internal/core"
	"anytime/internal/par"
	"anytime/internal/perm"
	"anytime/internal/pix"
	"anytime/internal/sampling"
)

// Config parameterizes the baseline and the automaton.
type Config struct {
	// Workers is the number of sampling workers. Default 1.
	Workers int
	// Granularity is the number of output pixels interpolated per
	// published snapshot. Default pixels/12 (publishing an RGB snapshot
	// costs a full-image render, so it must stay coarse relative to the
	// cheap per-pixel interpolation).
	Granularity int
	// Snapshot selects how round snapshots are rendered. The default,
	// pix.SnapshotClone, publishes immutable clones; pix.SnapshotTiles is
	// the zero-copy publish path (see pix.TileCloner for the aliasing
	// contract consumers must then honor).
	Snapshot pix.SnapshotMode
	// Publish selects when round snapshots are built and published.
	// Default core.PublishEveryRound.
	Publish core.PublishPolicy
	// OnSnapshot, if non-nil, is invoked after each publish with the
	// number of output pixels computed so far and the published image.
	// Under pix.SnapshotTiles it must not retain img past the call.
	OnSnapshot func(processed int, img *pix.Image)
}

func (cfg Config) withDefaults(pixels int) Config {
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = pixels / 12
		if cfg.Granularity < 1 {
			cfg.Granularity = 1
		}
	}
	return cfg
}

func (cfg Config) validate(in *pix.Image) error {
	if in.C != 1 {
		return fmt.Errorf("debayer: input mosaic must be single-channel, got %d channels", in.C)
	}
	if cfg.Workers < 1 {
		return fmt.Errorf("debayer: workers %d must be positive", cfg.Workers)
	}
	if cfg.Granularity < 0 {
		return fmt.Errorf("debayer: negative granularity %d", cfg.Granularity)
	}
	return nil
}

// interpolate computes the full RGB value at (x, y) of the GRBG mosaic by
// averaging the nearest mosaic sites of each color channel (bilinear
// demosaicing with clamped borders). Interior pixels take a single-pass
// fast path; border pixels fall back to the channel-by-channel scan. Both
// visit exactly the same mosaic sites per channel, so results are
// bit-identical.
//
//anytime:hotpath
func interpolate(m *pix.Image, x, y int) (r, g, b int32) {
	if x >= 1 && y >= 1 && x+1 < m.W && y+1 < m.H {
		return interpolateInterior(m, x, y)
	}
	for c := 0; c < 3; c++ {
		v := channelAt(m, x, y, c)
		switch c {
		case 0:
			r = v
		case 1:
			g = v
		default:
			b = v
		}
	}
	return r, g, b
}

// interpolateInterior gathers the 3x3 neighborhood once, accumulating a
// sum and site count per channel, instead of re-scanning the neighborhood
// for each of the three channels with per-site bounds checks. Each row is
// re-sliced once (full-slice expression, so the inner loads are
// bounds-check-free) and the GRBG parity of a site reduces to the parities
// of its coordinates. The channel sampled at (x, y) itself returns the raw
// sensor value, as in channelAt.
//
//anytime:hotpath
func interpolateInterior(m *pix.Image, x, y int) (r, g, b int32) {
	w := m.W
	px := m.Pix
	var sum [3]int64
	var cnt [3]int64
	base := (y-1)*w + x - 1
	for dy := 0; dy < 3; dy++ {
		row := px[base : base+3 : base+3]
		yy := y + dy - 1
		// GRBG: even rows alternate G R G…, odd rows B G B… (by x parity).
		if yy&1 == 0 {
			if x&1 == 0 { // columns x-1, x, x+1 are odd, even, odd
				sum[0] += int64(row[0]) + int64(row[2])
				cnt[0] += 2
				sum[1] += int64(row[1])
				cnt[1]++
			} else {
				sum[1] += int64(row[0]) + int64(row[2])
				cnt[1] += 2
				sum[0] += int64(row[1])
				cnt[0]++
			}
		} else {
			if x&1 == 0 {
				sum[1] += int64(row[0]) + int64(row[2])
				cnt[1] += 2
				sum[2] += int64(row[1])
				cnt[2]++
			} else {
				sum[2] += int64(row[0]) + int64(row[2])
				cnt[2] += 2
				sum[1] += int64(row[1])
				cnt[1]++
			}
		}
		base += w
	}
	center := pix.BayerChannelGRBG(x, y)
	out := [3]int32{}
	for c := 0; c < 3; c++ {
		if c == center {
			out[c] = px[y*w+x]
			continue
		}
		s, n := sum[c], cnt[c]
		out[c] = int32((s + n/2) / n)
	}
	return out[0], out[1], out[2]
}

// channelAt estimates channel c at (x, y) by averaging the mosaic samples
// of that channel in the 3x3 neighborhood (including (x, y) itself when the
// mosaic samples c there).
//
//anytime:hotpath
func channelAt(m *pix.Image, x, y, c int) int32 {
	if pix.BayerChannelGRBG(x, y) == c {
		return m.Gray(x, y)
	}
	var sum int64
	var count int64
	for dy := -1; dy <= 1; dy++ {
		yy := y + dy
		if yy < 0 || yy >= m.H {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			xx := x + dx
			if xx < 0 || xx >= m.W {
				continue
			}
			if pix.BayerChannelGRBG(xx, yy) == c {
				sum += int64(m.Gray(xx, yy))
				count++
			}
		}
	}
	if count == 0 {
		// Degenerate geometry (e.g. 1-pixel-wide images may lack a channel
		// site nearby); fall back to the raw sensor sample.
		return m.Gray(x, y)
	}
	return int32((sum + count/2) / count)
}

// Precise computes the baseline demosaiced RGB image in parallel over row
// bands.
func Precise(in *pix.Image, cfg Config) (*pix.Image, error) {
	cfg = cfg.withDefaults(in.Pixels())
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	out, err := pix.NewRGB(in.W, in.H)
	if err != nil {
		return nil, err
	}
	par.Rows(in.H, cfg.Workers, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < in.W; x++ {
				r, g, b := interpolate(in, x, y)
				out.Set(x, y, 0, r)
				out.Set(x, y, 1, g)
				out.Set(x, y, 2, b)
			}
		}
	})
	return out, nil
}

// Run is a constructed debayer anytime automaton with its output buffer.
type Run struct {
	Automaton *core.Automaton
	Out       *core.Buffer[*pix.Image]
}

// New builds the debayer anytime automaton: one diffusive stage that
// interpolates output pixels in 2D tree order, publishing progressively
// higher-resolution RGB approximations and finally the precise image.
func New(in *pix.Image, cfg Config) (*Run, error) {
	cfg = cfg.withDefaults(in.Pixels())
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	ord, err := perm.Tree2D(in.H, in.W)
	if err != nil {
		return nil, err
	}
	working, err := pix.NewRGB(in.W, in.H)
	if err != nil {
		return nil, err
	}
	snap, err := pix.NewSnapshotter(working, cfg.Workers, cfg.Snapshot)
	if err != nil {
		return nil, err
	}
	out := core.NewBuffer[*pix.Image]("debayer", nil)
	a := core.New()
	err = a.AddStage("interpolate", func(c *core.Context) error {
		return sampling.MapWorkers(c, out, ord,
			func(worker, dst int) error {
				x, y := dst%in.W, dst/in.W
				r, g, b := interpolate(in, x, y)
				working.Set(x, y, 0, r)
				working.Set(x, y, 1, g)
				working.Set(x, y, 2, b)
				snap.Mark(worker, dst)
				return nil
			},
			func(processed int) (*pix.Image, error) {
				img, err := snap.Snapshot()
				if err != nil {
					return nil, err
				}
				if cfg.OnSnapshot != nil {
					cfg.OnSnapshot(processed, img)
				}
				return img, nil
			},
			core.RoundConfig{Granularity: cfg.Granularity, Workers: cfg.Workers, Policy: cfg.Publish})
	})
	if err != nil {
		return nil, err
	}
	// Warm-pool support: like conv2d, the only per-run state is the
	// snapshotter mask and the output buffer.
	a.OnReset(func() {
		snap.Reset()
		out.Reset()
	})
	// Warm-start support: a cached RGB output frame (or a pix.SeedFrame with
	// delta-start stale tiles) becomes the starting published state; the run
	// still interpolates every pixel, so the precise final is unchanged.
	a.OnSeed(func(seed any, v core.Version) error {
		img, stale, err := pix.AsSeedFrame(seed, in.W, in.H, 3)
		if err != nil {
			return fmt.Errorf("debayer: %w", err)
		}
		img.CloneInto(working)
		if err := snap.Seed(stale); err != nil {
			return err
		}
		first, err := snap.Snapshot()
		if err != nil {
			return err
		}
		return out.Seed(first, v)
	})
	return &Run{Automaton: a, Out: out}, nil
}
