package debayer

import (
	"context"
	"math"
	"testing"

	"anytime/internal/metrics"
	"anytime/internal/pix"
)

func mosaic(t *testing.T, w, h int) (*pix.Image, *pix.Image) {
	t.Helper()
	rgb, err := pix.SyntheticRGB(w, h, 21)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pix.BayerGRBG(rgb)
	if err != nil {
		t.Fatal(err)
	}
	return m, rgb
}

func TestConfigValidation(t *testing.T) {
	m, _ := mosaic(t, 8, 8)
	if _, err := Precise(m, Config{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := New(m, Config{Granularity: -1}); err == nil {
		t.Error("negative granularity accepted")
	}
	rgb := pix.MustNew(4, 4, 3)
	if _, err := Precise(rgb, Config{}); err == nil {
		t.Error("3-channel input accepted")
	}
}

func TestPreciseConstantMosaic(t *testing.T) {
	// A mosaic of a constant gray RGB image demosaics back to the same
	// constant everywhere.
	rgb := pix.MustNew(8, 8, 3)
	rgb.Fill(100)
	m, err := pix.BayerGRBG(rgb)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Precise(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Pix {
		if v != 100 {
			t.Fatalf("constant mosaic produced %d", v)
		}
	}
}

func TestPreciseSensorSitesExact(t *testing.T) {
	// At each mosaic site, the demosaiced image must reproduce the sensor
	// sample in that site's own channel exactly.
	m, _ := mosaic(t, 16, 16)
	out, err := Precise(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			c := pix.BayerChannelGRBG(x, y)
			if out.At(x, y, c) != m.Gray(x, y) {
				t.Fatalf("site (%d,%d) channel %d = %d, want sensor %d", x, y, c, out.At(x, y, c), m.Gray(x, y))
			}
		}
	}
}

func TestPreciseApproximatesOriginal(t *testing.T) {
	// Demosaicing a mosaic of a smooth image should land reasonably close
	// to the original RGB image.
	m, rgb := mosaic(t, 64, 64)
	out, err := Precise(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := metrics.SNR(rgb.Pix, out.Pix)
	if err != nil {
		t.Fatal(err)
	}
	if db < 10 {
		t.Errorf("demosaic SNR vs original = %v dB, implausibly low", db)
	}
}

func TestPreciseParallelMatchesSerial(t *testing.T) {
	m, _ := mosaic(t, 48, 36)
	serial, err := Precise(m, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Precise(m, Config{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Equal(parallel) {
		t.Error("parallel baseline differs from serial")
	}
}

func TestAutomatonFinalEqualsPrecise(t *testing.T) {
	m, _ := mosaic(t, 64, 48)
	want, err := Precise(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		run, err := New(m, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, ok := run.Out.Latest()
		if !ok || !snap.Final {
			t.Fatal("no final snapshot")
		}
		if !snap.Value.Equal(want) {
			t.Errorf("workers=%d: final output differs from precise baseline", workers)
		}
	}
}

func TestSNRTrendsUpward(t *testing.T) {
	m, _ := mosaic(t, 64, 64)
	want, err := Precise(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var snrs []float64
	run, err := New(m, Config{
		Granularity: 64 * 64 / 16,
		OnSnapshot: func(processed int, img *pix.Image) {
			db, err := metrics.SNR(want.Pix, img.Pix)
			if err != nil {
				t.Error(err)
				return
			}
			snrs = append(snrs, db)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(snrs) == 0 {
		t.Fatal("no snapshots")
	}
	if !math.IsInf(snrs[len(snrs)-1], 1) {
		t.Errorf("final SNR = %v, want +Inf", snrs[len(snrs)-1])
	}
	if snrs[0] < 5 {
		t.Errorf("first snapshot SNR = %v dB; progressive rendering broken", snrs[0])
	}
}

func TestTinyMosaics(t *testing.T) {
	for _, dim := range [][2]int{{1, 1}, {2, 2}, {3, 5}, {1, 8}} {
		m, _ := mosaic(t, dim[0], dim[1])
		want, err := Precise(m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		run, err := New(m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := run.Automaton.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, _ := run.Out.Latest()
		if !snap.Value.Equal(want) {
			t.Errorf("%v: final != precise", dim)
		}
	}
}
