package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRelMeanError(t *testing.T) {
	got, err := RelMeanError([]int32{100, 200}, []int32{110, 180})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.1 + 0.1) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RelMeanError = %v, want %v", got, want)
	}
	// Zero reference elements use the unit floor.
	got, err = RelMeanError([]int32{0}, []int32{3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("zero-ref RelMeanError = %v, want 3", got)
	}
	if _, err := RelMeanError(nil, nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestErrorPercentile(t *testing.T) {
	ref := []int32{0, 0, 0, 0}
	approx := []int32{1, 2, 3, 10}
	cases := []struct {
		p    float64
		want int64
	}{{25, 1}, {50, 2}, {75, 3}, {100, 10}, {0, 1}}
	for _, c := range cases {
		got, err := ErrorPercentile(ref, approx, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("p=%v: got %d want %d", c.p, got, c.want)
		}
	}
	if _, err := ErrorPercentile(ref, approx, -1); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := ErrorPercentile(ref, approx, 101); err == nil {
		t.Error("percentile > 100 accepted")
	}
}

func TestWithinTolerance(t *testing.T) {
	ref := []int32{10, 10, 10, 10}
	approx := []int32{10, 11, 13, 20}
	got, err := WithinTolerance(ref, approx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("WithinTolerance = %v, want 0.5", got)
	}
	if _, err := WithinTolerance(ref, approx, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestErrorHistogram(t *testing.T) {
	ref := []int32{0, 0, 0, 0}
	approx := []int32{0, 5, 15, 100}
	h, err := ErrorHistogram(ref, approx, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// errors 0,5 -> bin 0; 15 -> bin 1; 100 -> clamped to bin 2.
	if h[0] != 2 || h[1] != 1 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
	if _, err := ErrorHistogram(ref, approx, 0, 10); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := ErrorHistogram(ref, approx, 3, 0); err == nil {
		t.Error("zero width accepted")
	}
}

// TestToleranceMonotoneInTol: loosening the tolerance can only admit more
// elements, reaching 1.0 at the max error.
func TestToleranceMonotoneInTol(t *testing.T) {
	f := func(a, b []int16) bool {
		n := min(len(a), len(b))
		if n == 0 {
			return true
		}
		ref := make([]int32, n)
		approx := make([]int32, n)
		for i := 0; i < n; i++ {
			ref[i] = int32(a[i])
			approx[i] = int32(b[i])
		}
		prev := -1.0
		for _, tol := range []int64{0, 10, 1000, 1 << 20} {
			frac, err := WithinTolerance(ref, approx, tol)
			if err != nil || frac < prev {
				return false
			}
			prev = frac
		}
		worst, err := MaxAbsError(ref, approx)
		if err != nil {
			return false
		}
		frac, err := WithinTolerance(ref, approx, worst)
		return err == nil && frac == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestHistogramTotalsMatch: histogram bins always sum to the element count.
func TestHistogramTotalsMatch(t *testing.T) {
	f := func(a, b []int16, rawBins, rawWidth uint8) bool {
		n := min(len(a), len(b))
		if n == 0 {
			return true
		}
		ref := make([]int32, n)
		approx := make([]int32, n)
		for i := 0; i < n; i++ {
			ref[i] = int32(a[i])
			approx[i] = int32(b[i])
		}
		bins := int(rawBins)%8 + 1
		width := int64(rawWidth)%100 + 1
		h, err := ErrorHistogram(ref, approx, bins, width)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range h {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
