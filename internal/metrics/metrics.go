// Package metrics implements the accuracy metrics of the paper's evaluation
// (§IV-A2): signal-to-noise ratio (SNR) in decibels of an approximate output
// relative to the baseline precise output, plus the related MSE/RMSE/PSNR
// measures common in image processing. An exact match yields +Inf dB,
// matching the paper's "∞ dB is perfect accuracy".
package metrics

import (
	"fmt"
	"math"
)

// InfDB is the SNR of a bit-exact output: positive infinity decibels.
var InfDB = math.Inf(1)

// MSE returns the mean squared error between ref and approx.
// The slices must have equal nonzero length.
func MSE(ref, approx []int32) (float64, error) {
	if err := checkLens(len(ref), len(approx)); err != nil {
		return 0, err
	}
	var sum float64
	for i := range ref {
		d := float64(ref[i] - approx[i])
		sum += d * d
	}
	return sum / float64(len(ref)), nil
}

// RMSE returns the root mean squared error between ref and approx.
func RMSE(ref, approx []int32) (float64, error) {
	mse, err := MSE(ref, approx)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(mse), nil
}

// SNR returns the signal-to-noise ratio, in decibels, of approx relative to
// the reference ref:
//
//	SNR = 10 * log10( Σ ref² / Σ (ref-approx)² )
//
// It returns +Inf for a bit-exact match and -Inf for a zero reference signal
// with nonzero error.
func SNR(ref, approx []int32) (float64, error) {
	if err := checkLens(len(ref), len(approx)); err != nil {
		return 0, err
	}
	var signal, noise float64
	for i := range ref {
		s := float64(ref[i])
		d := s - float64(approx[i])
		signal += s * s
		noise += d * d
	}
	if noise == 0 {
		return InfDB, nil
	}
	if signal == 0 {
		return math.Inf(-1), nil
	}
	return 10 * math.Log10(signal/noise), nil
}

// PSNR returns the peak signal-to-noise ratio in decibels for signals whose
// maximum possible value is peak (e.g. 255 for 8-bit pixels). Returns +Inf
// for a bit-exact match.
func PSNR(ref, approx []int32, peak int32) (float64, error) {
	if peak <= 0 {
		return 0, fmt.Errorf("metrics: peak %d must be positive", peak)
	}
	mse, err := MSE(ref, approx)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return InfDB, nil
	}
	p := float64(peak)
	return 10 * math.Log10(p*p/mse), nil
}

// MaxAbsError returns the largest absolute elementwise difference.
func MaxAbsError(ref, approx []int32) (int64, error) {
	if err := checkLens(len(ref), len(approx)); err != nil {
		return 0, err
	}
	var worst int64
	for i := range ref {
		d := int64(ref[i]) - int64(approx[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// MeanAbsError returns the mean absolute elementwise difference.
func MeanAbsError(ref, approx []int32) (float64, error) {
	if err := checkLens(len(ref), len(approx)); err != nil {
		return 0, err
	}
	var sum float64
	for i := range ref {
		sum += math.Abs(float64(ref[i]) - float64(approx[i]))
	}
	return sum / float64(len(ref)), nil
}

// FormatDB renders a decibel value the way the paper's figures do: "inf"
// for perfect accuracy, otherwise a fixed-point decimal.
func FormatDB(db float64) string {
	if math.IsInf(db, 1) {
		return "inf"
	}
	if math.IsInf(db, -1) {
		return "-inf"
	}
	return fmt.Sprintf("%.2f", db)
}

func checkLens(a, b int) error {
	if a != b {
		return fmt.Errorf("metrics: length mismatch %d vs %d", a, b)
	}
	if a == 0 {
		return fmt.Errorf("metrics: empty signal")
	}
	return nil
}
