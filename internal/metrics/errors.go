package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Beyond SNR, the approximate-computing literature the paper builds on
// characterizes output error by its distribution: mean relative error,
// error percentiles, and the fraction of elements within a tolerance.
// These are the whole-output acceptability predicates a StopWhen controller
// plugs in.

// RelMeanError returns the mean of |ref-approx| / max(|ref|, 1) — the
// standard mean relative error with a unit floor to keep zero-reference
// elements meaningful.
func RelMeanError(ref, approx []int32) (float64, error) {
	if err := checkLens(len(ref), len(approx)); err != nil {
		return 0, err
	}
	var sum float64
	for i := range ref {
		den := math.Abs(float64(ref[i]))
		if den < 1 {
			den = 1
		}
		sum += math.Abs(float64(ref[i])-float64(approx[i])) / den
	}
	return sum / float64(len(ref)), nil
}

// ErrorPercentile returns the p-th percentile (0 <= p <= 100) of the
// absolute elementwise error.
func ErrorPercentile(ref, approx []int32, p float64) (int64, error) {
	if err := checkLens(len(ref), len(approx)); err != nil {
		return 0, err
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, fmt.Errorf("metrics: percentile %v out of [0,100]", p)
	}
	errs := make([]int64, len(ref))
	for i := range ref {
		d := int64(ref[i]) - int64(approx[i])
		if d < 0 {
			d = -d
		}
		errs[i] = d
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i] < errs[j] })
	idx := int(math.Ceil(p/100*float64(len(errs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(errs) {
		idx = len(errs) - 1
	}
	return errs[idx], nil
}

// WithinTolerance returns the fraction of elements whose absolute error is
// at most tol.
func WithinTolerance(ref, approx []int32, tol int64) (float64, error) {
	if err := checkLens(len(ref), len(approx)); err != nil {
		return 0, err
	}
	if tol < 0 {
		return 0, fmt.Errorf("metrics: negative tolerance %d", tol)
	}
	ok := 0
	for i := range ref {
		d := int64(ref[i]) - int64(approx[i])
		if d < 0 {
			d = -d
		}
		if d <= tol {
			ok++
		}
	}
	return float64(ok) / float64(len(ref)), nil
}

// ErrorHistogram buckets absolute elementwise errors into bins of the
// given width (the last bin absorbs everything beyond bins*width).
func ErrorHistogram(ref, approx []int32, bins int, width int64) ([]int, error) {
	if err := checkLens(len(ref), len(approx)); err != nil {
		return nil, err
	}
	if bins < 1 || width < 1 {
		return nil, fmt.Errorf("metrics: invalid histogram shape bins=%d width=%d", bins, width)
	}
	out := make([]int, bins)
	for i := range ref {
		d := int64(ref[i]) - int64(approx[i])
		if d < 0 {
			d = -d
		}
		b := int(d / width)
		if b >= bins {
			b = bins - 1
		}
		out[b]++
	}
	return out, nil
}
