package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSNRExactMatchIsInf(t *testing.T) {
	a := []int32{1, 2, 3, -4}
	db, err := SNR(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(db, 1) {
		t.Errorf("SNR of identical signals = %v, want +Inf", db)
	}
}

func TestSNRKnownValue(t *testing.T) {
	// signal power 100, noise power 1 -> 20 dB.
	ref := []int32{10}
	approx := []int32{9}
	db, err := SNR(ref, approx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(db-20) > 1e-9 {
		t.Errorf("SNR = %v, want 20", db)
	}
}

func TestSNRZeroSignal(t *testing.T) {
	db, err := SNR([]int32{0, 0}, []int32{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(db, -1) {
		t.Errorf("SNR with zero signal and nonzero noise = %v, want -Inf", db)
	}
}

func TestSNRLengthMismatch(t *testing.T) {
	if _, err := SNR([]int32{1}, []int32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SNR(nil, nil); err == nil {
		t.Error("empty signals accepted")
	}
}

func TestMSEKnownValue(t *testing.T) {
	mse, err := MSE([]int32{0, 0, 0, 0}, []int32{1, 1, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if mse != 3 {
		t.Errorf("MSE = %v, want 3", mse)
	}
}

func TestRMSE(t *testing.T) {
	rmse, err := RMSE([]int32{0, 0}, []int32{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rmse-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v", rmse)
	}
}

func TestPSNR(t *testing.T) {
	db, err := PSNR([]int32{255, 0}, []int32{255, 0}, 255)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(db, 1) {
		t.Errorf("PSNR exact = %v, want +Inf", db)
	}
	db, err = PSNR([]int32{255}, []int32{254}, 255)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255)
	if math.Abs(db-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", db, want)
	}
	if _, err := PSNR([]int32{1}, []int32{1}, 0); err == nil {
		t.Error("nonpositive peak accepted")
	}
}

func TestMaxAbsError(t *testing.T) {
	got, err := MaxAbsError([]int32{math.MinInt32, 5}, []int32{math.MaxInt32, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(math.MaxInt32)-int64(math.MinInt32) {
		t.Errorf("MaxAbsError across int32 range = %d", got)
	}
}

func TestMeanAbsError(t *testing.T) {
	got, err := MeanAbsError([]int32{0, 0, 0}, []int32{1, -2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MeanAbsError = %v, want 2", got)
	}
}

func TestFormatDB(t *testing.T) {
	if s := FormatDB(InfDB); s != "inf" {
		t.Errorf("FormatDB(+Inf) = %q", s)
	}
	if s := FormatDB(math.Inf(-1)); s != "-inf" {
		t.Errorf("FormatDB(-Inf) = %q", s)
	}
	if s := FormatDB(15.849); s != "15.85" {
		t.Errorf("FormatDB = %q", s)
	}
}

// TestSNRMonotoneInNoise: for a fixed reference, scaling the error down must
// never decrease SNR. This is the property the anytime guarantee is stated
// in terms of.
func TestSNRMonotoneInNoise(t *testing.T) {
	f := func(sig []int32) bool {
		if len(sig) == 0 {
			return true
		}
		ref := make([]int32, len(sig))
		for i, v := range sig {
			ref[i] = v/2 + 100 // keep nonzero-ish signal
		}
		far := make([]int32, len(ref))
		near := make([]int32, len(ref))
		for i := range ref {
			far[i] = ref[i] + 8
			near[i] = ref[i] + 2
		}
		dbFar, err1 := SNR(ref, far)
		dbNear, err2 := SNR(ref, near)
		return err1 == nil && err2 == nil && dbNear >= dbFar
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSNRSymmetryUnderNegation: SNR(ref, approx) only depends on ref and the
// elementwise error, so negating both leaves it unchanged.
func TestSNRSymmetryUnderNegation(t *testing.T) {
	f := func(a, b []int16) bool {
		n := min(len(a), len(b))
		if n == 0 {
			return true
		}
		ref := make([]int32, n)
		approx := make([]int32, n)
		negRef := make([]int32, n)
		negApprox := make([]int32, n)
		for i := 0; i < n; i++ {
			ref[i] = int32(a[i])
			approx[i] = int32(b[i])
			negRef[i] = -ref[i]
			negApprox[i] = -approx[i]
		}
		x, err1 := SNR(ref, approx)
		y, err2 := SNR(negRef, negApprox)
		if err1 != nil || err2 != nil {
			return false
		}
		return x == y || (math.IsInf(x, 1) && math.IsInf(y, 1)) || math.Abs(x-y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
