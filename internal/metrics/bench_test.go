package metrics

import "testing"

func benchSignals(n int) ([]int32, []int32) {
	ref := make([]int32, n)
	approx := make([]int32, n)
	for i := range ref {
		ref[i] = int32(i % 255)
		approx[i] = ref[i] + int32(i%3) - 1
	}
	return ref, approx
}

func BenchmarkSNR(b *testing.B) {
	ref, approx := benchSignals(512 * 512)
	b.SetBytes(512 * 512 * 8)
	for i := 0; i < b.N; i++ {
		if _, err := SNR(ref, approx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMSE(b *testing.B) {
	ref, approx := benchSignals(512 * 512)
	b.SetBytes(512 * 512 * 8)
	for i := 0; i < b.N; i++ {
		if _, err := MSE(ref, approx); err != nil {
			b.Fatal(err)
		}
	}
}
