// Package trace records the observable events of a running anytime
// automaton — snapshot publishes per buffer — and renders them as an ASCII
// timeline in the style of the paper's Figure 2, where each stage's
// intermediate outputs line up against wall time. It is pure observation:
// tracers attach through buffer observers and never perturb scheduling
// beyond the cost of a timestamp.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"anytime/internal/core"
)

// Event is one recorded publish.
type Event struct {
	Buffer  string
	At      time.Duration
	Version core.Version
	Final   bool
}

// Tracer collects events from any number of buffers.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// New returns an empty tracer. Call Start immediately before starting the
// automaton.
func New() *Tracer { return &Tracer{start: time.Now()} }

// Start (re)sets the timeline origin.
func (t *Tracer) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.start = time.Now()
	t.events = t.events[:0]
}

// Attach registers the tracer as one of buf's publish observers. It must be
// called before the automaton starts. Other observers (a telemetry sink,
// say) may share the buffer; each registered observer sees every publish.
func Attach[T any](t *Tracer, buf *core.Buffer[T]) {
	name := buf.Name()
	buf.OnPublish(func(s core.Snapshot[T]) {
		t.record(Event{Buffer: name, Version: s.Version, Final: s.Final})
	})
}

func (t *Tracer) record(e Event) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e.At = now.Sub(t.start)
	t.events = append(t.events, e)
}

// Events returns a copy of the recorded events in arrival order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Timeline renders the recorded events as one row per buffer: '·' marks an
// intermediate publish, '#' the final one, over a time axis of the given
// width in characters. Rows are ordered by each buffer's first publish.
func (t *Tracer) Timeline(w io.Writer, width int) error {
	return RenderTimeline(w, t.Events(), width)
}

// RenderTimeline renders any event list in Timeline's layout — one row per
// buffer over a shared time axis. It is exported so other recorders
// (internal/reqtrace's per-request flight recorder) reuse the exact Figure 2
// rendering for their publish events instead of reimplementing it.
func RenderTimeline(w io.Writer, events []Event, width int) error {
	if width < 10 {
		width = 10
	}
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	span := events[len(events)-1].At
	for _, e := range events {
		if e.At > span {
			span = e.At
		}
	}
	if span <= 0 {
		span = time.Nanosecond
	}
	type row struct {
		name  string
		first time.Duration
		cells []rune
	}
	rows := map[string]*row{}
	var order []*row
	nameWidth := 0
	for _, e := range events {
		r, ok := rows[e.Buffer]
		if !ok {
			r = &row{name: e.Buffer, first: e.At, cells: []rune(strings.Repeat(" ", width))}
			rows[e.Buffer] = r
			order = append(order, r)
			if len(e.Buffer) > nameWidth {
				nameWidth = len(e.Buffer)
			}
		}
		pos := int(float64(e.At) / float64(span) * float64(width-1))
		if pos < 0 {
			pos = 0
		}
		if pos >= width {
			pos = width - 1
		}
		mark := '·'
		if e.Final {
			mark = '#'
		}
		// Final marks win collisions; otherwise keep the densest mark.
		if r.cells[pos] != '#' {
			r.cells[pos] = mark
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].first < order[j].first })
	if _, err := fmt.Fprintf(w, "timeline over %v ('·' publish, '#' final):\n", span.Round(time.Microsecond)); err != nil {
		return err
	}
	for _, r := range order {
		if _, err := fmt.Fprintf(w, "  %-*s |%s|\n", nameWidth, r.name, string(r.cells)); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns per-buffer publish counts and final-publish times.
func (t *Tracer) Summary() map[string]BufferSummary {
	out := map[string]BufferSummary{}
	for _, e := range t.Events() {
		s := out[e.Buffer]
		s.Publishes++
		s.Last = e.At
		if s.Publishes == 1 {
			s.First = e.At
		}
		if e.Final {
			s.Final = e.At
			s.Finalized = true
		}
		out[e.Buffer] = s
	}
	return out
}

// BufferSummary aggregates one buffer's publish activity.
type BufferSummary struct {
	Publishes int
	First     time.Duration
	Last      time.Duration
	Final     time.Duration
	Finalized bool
}
