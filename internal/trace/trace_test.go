package trace

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"anytime/internal/core"
)

func TestTracerRecordsPublishes(t *testing.T) {
	tr := New()
	buf := core.NewBuffer[int]("stage-a", nil)
	Attach(tr, buf)
	tr.Start()
	a := core.New()
	if err := a.AddStage("s", func(c *core.Context) error {
		for i := 1; i <= 5; i++ {
			if _, err := buf.Publish(i, i == 5); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 5 {
		t.Fatalf("%d events", len(events))
	}
	for i, e := range events {
		if e.Buffer != "stage-a" || e.Version != core.Version(i+1) {
			t.Errorf("event %d = %+v", i, e)
		}
		if e.Final != (i == 4) {
			t.Errorf("event %d final = %v", i, e.Final)
		}
		if i > 0 && e.At < events[i-1].At {
			t.Error("event times not monotone")
		}
	}
	sum := tr.Summary()["stage-a"]
	if sum.Publishes != 5 || !sum.Finalized {
		t.Errorf("summary = %+v", sum)
	}
	if sum.First > sum.Final {
		t.Error("first publish after final")
	}
}

func TestTimelineRendering(t *testing.T) {
	tr := New()
	tr.mu.Lock()
	tr.events = []Event{
		{Buffer: "f", At: 0, Version: 1},
		{Buffer: "f", At: 50 * time.Millisecond, Version: 2, Final: true},
		{Buffer: "g", At: 25 * time.Millisecond, Version: 1},
		{Buffer: "g", At: 100 * time.Millisecond, Version: 2, Final: true},
	}
	tr.mu.Unlock()
	var buf bytes.Buffer
	if err := tr.Timeline(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline lines: %q", out)
	}
	if !strings.Contains(lines[1], "f") || !strings.Contains(lines[2], "g") {
		t.Errorf("row order wrong:\n%s", out)
	}
	rows := strings.Join(lines[1:], "\n") // skip the legend line
	if strings.Count(rows, "#") != 2 {
		t.Errorf("want 2 final marks:\n%s", out)
	}
	if strings.Count(rows, "·") != 2 {
		t.Errorf("want 2 intermediate marks:\n%s", out)
	}
	// g's final mark must be at the right edge (latest event).
	gRow := lines[2]
	if !strings.HasSuffix(strings.TrimRight(gRow, "|"), "#") {
		t.Errorf("g's final not at the right edge: %q", gRow)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Timeline(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no events") {
		t.Errorf("empty timeline = %q", buf.String())
	}
}

func TestTimelineNarrowWidthClamped(t *testing.T) {
	tr := New()
	tr.mu.Lock()
	tr.events = []Event{{Buffer: "x", At: time.Millisecond, Version: 1, Final: true}}
	tr.mu.Unlock()
	var buf bytes.Buffer
	if err := tr.Timeline(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Error("clamped timeline lost the event")
	}
}

// TestTimelineLabelWiderThanWidth: a buffer name longer than the requested
// width must not corrupt the layout — the name column sizes independently
// of the time axis.
func TestTimelineLabelWiderThanWidth(t *testing.T) {
	tr := New()
	const name = "a-buffer-name-much-wider-than-the-axis"
	tr.mu.Lock()
	tr.events = []Event{{Buffer: name, At: time.Millisecond, Version: 1, Final: true}}
	tr.mu.Unlock()
	var buf bytes.Buffer
	if err := tr.Timeline(&buf, len(name)/2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, name) {
		t.Errorf("timeline lost the label: %q", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("timeline lost the event: %q", out)
	}
}

// TestTracerRecordsEventsAfterAutomatonStop locks in current behavior:
// observers stay attached after the automaton stops, so a publish arriving
// later (a detached writer, a second run on the same buffer) is still
// recorded and extends the timeline.
func TestTracerRecordsEventsAfterAutomatonStop(t *testing.T) {
	tr := New()
	buf := core.NewBuffer[int]("late", nil)
	Attach(tr, buf)
	tr.Start()
	a := core.New()
	if err := a.AddStage("s", func(c *core.Context) error {
		if _, err := buf.Publish(1, false); err != nil {
			return err
		}
		for {
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Stop()
	if got := len(tr.Events()); got != 1 {
		t.Fatalf("%d events before the late publish", got)
	}
	if _, err := buf.Publish(2, true); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("late publish not recorded: %d events", len(events))
	}
	if events[1].Version != 2 || !events[1].Final || events[1].At < events[0].At {
		t.Errorf("late event = %+v", events[1])
	}
	var out bytes.Buffer
	if err := tr.Timeline(&out, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "#") {
		t.Errorf("timeline missing the late final mark: %q", out.String())
	}
}

func TestTracerMultiBufferPipeline(t *testing.T) {
	tr := New()
	fBuf := core.NewBuffer[int]("f", nil)
	gBuf := core.NewBuffer[int]("g", nil)
	Attach(tr, fBuf)
	Attach(tr, gBuf)
	tr.Start()
	a := core.New()
	if err := a.AddStage("f", func(c *core.Context) error {
		return core.Iterative(c, fBuf, []func() (int, error){
			func() (int, error) { return 1, nil },
			func() (int, error) { return 2, nil },
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *core.Context) error {
		return core.AsyncConsume(c, fBuf, func(s core.Snapshot[int]) error {
			_, err := gBuf.Publish(s.Value*10, s.Final)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	if !sum["f"].Finalized || !sum["g"].Finalized {
		t.Errorf("summary = %+v", sum)
	}
	if sum["g"].Final < sum["f"].Final {
		t.Error("child finalized before parent")
	}
}
