package trace

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"anytime/internal/core"
)

func TestTracerRecordsPublishes(t *testing.T) {
	tr := New()
	buf := core.NewBuffer[int]("stage-a", nil)
	Attach(tr, buf)
	tr.Start()
	a := core.New()
	if err := a.AddStage("s", func(c *core.Context) error {
		for i := 1; i <= 5; i++ {
			if _, err := buf.Publish(i, i == 5); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 5 {
		t.Fatalf("%d events", len(events))
	}
	for i, e := range events {
		if e.Buffer != "stage-a" || e.Version != core.Version(i+1) {
			t.Errorf("event %d = %+v", i, e)
		}
		if e.Final != (i == 4) {
			t.Errorf("event %d final = %v", i, e.Final)
		}
		if i > 0 && e.At < events[i-1].At {
			t.Error("event times not monotone")
		}
	}
	sum := tr.Summary()["stage-a"]
	if sum.Publishes != 5 || !sum.Finalized {
		t.Errorf("summary = %+v", sum)
	}
	if sum.First > sum.Final {
		t.Error("first publish after final")
	}
}

func TestTimelineRendering(t *testing.T) {
	tr := New()
	tr.mu.Lock()
	tr.events = []Event{
		{Buffer: "f", At: 0, Version: 1},
		{Buffer: "f", At: 50 * time.Millisecond, Version: 2, Final: true},
		{Buffer: "g", At: 25 * time.Millisecond, Version: 1},
		{Buffer: "g", At: 100 * time.Millisecond, Version: 2, Final: true},
	}
	tr.mu.Unlock()
	var buf bytes.Buffer
	if err := tr.Timeline(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline lines: %q", out)
	}
	if !strings.Contains(lines[1], "f") || !strings.Contains(lines[2], "g") {
		t.Errorf("row order wrong:\n%s", out)
	}
	rows := strings.Join(lines[1:], "\n") // skip the legend line
	if strings.Count(rows, "#") != 2 {
		t.Errorf("want 2 final marks:\n%s", out)
	}
	if strings.Count(rows, "·") != 2 {
		t.Errorf("want 2 intermediate marks:\n%s", out)
	}
	// g's final mark must be at the right edge (latest event).
	gRow := lines[2]
	if !strings.HasSuffix(strings.TrimRight(gRow, "|"), "#") {
		t.Errorf("g's final not at the right edge: %q", gRow)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Timeline(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no events") {
		t.Errorf("empty timeline = %q", buf.String())
	}
}

func TestTimelineNarrowWidthClamped(t *testing.T) {
	tr := New()
	tr.mu.Lock()
	tr.events = []Event{{Buffer: "x", At: time.Millisecond, Version: 1, Final: true}}
	tr.mu.Unlock()
	var buf bytes.Buffer
	if err := tr.Timeline(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Error("clamped timeline lost the event")
	}
}

func TestTracerMultiBufferPipeline(t *testing.T) {
	tr := New()
	fBuf := core.NewBuffer[int]("f", nil)
	gBuf := core.NewBuffer[int]("g", nil)
	Attach(tr, fBuf)
	Attach(tr, gBuf)
	tr.Start()
	a := core.New()
	if err := a.AddStage("f", func(c *core.Context) error {
		return core.Iterative(c, fBuf, []func() (int, error){
			func() (int, error) { return 1, nil },
			func() (int, error) { return 2, nil },
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *core.Context) error {
		return core.AsyncConsume(c, fBuf, func(s core.Snapshot[int]) error {
			_, err := gBuf.Publish(s.Value*10, s.Final)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	if !sum["f"].Finalized || !sum["g"].Finalized {
		t.Errorf("summary = %+v", sum)
	}
	if sum["g"].Final < sum["f"].Final {
		t.Error("child finalized before parent")
	}
}
