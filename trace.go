package anytime

import (
	"io"

	"anytime/internal/core"
	"anytime/internal/trace"
)

// Tracer records the publish events of any number of buffers and renders
// them as an ASCII timeline (the layout of the paper's Figure 2). Pure
// observation: it never perturbs the pipeline beyond a timestamp.
type Tracer = trace.Tracer

// TraceEvent is one recorded publish.
type TraceEvent = trace.Event

// NewTracer returns an empty tracer; call its Start immediately before
// starting the automaton.
func NewTracer() *Tracer { return trace.New() }

// TraceBuffer registers the tracer as one of buf's publish observers. Call
// before the automaton starts; tracers and telemetry observers may share a
// buffer.
func TraceBuffer[T any](t *Tracer, buf *Buffer[T]) { trace.Attach(t, buf) }

// GraphBuilder declares an automaton as an explicit dataflow DAG and
// validates the model's structural properties (single writer per buffer,
// acyclicity) before construction.
type GraphBuilder = core.GraphBuilder

// NewGraph returns an empty graph builder.
func NewGraph() *GraphBuilder { return core.NewGraph() }

// WriteTimeline renders the tracer's events to w with the given width.
func WriteTimeline(t *Tracer, w io.Writer, width int) error { return t.Timeline(w, width) }
