package anytime_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"anytime"
)

// TestPublicAPIGraphBuilder wires a validated DAG through the facade.
func TestPublicAPIGraphBuilder(t *testing.T) {
	f := anytime.NewBuffer[int]("F", nil)
	g := anytime.NewBuffer[int]("G", nil)
	a, err := anytime.NewGraph().
		Stage("f", func(c *anytime.Context) error {
			return anytime.Iterative(c, f, []func() (int, error){
				func() (int, error) { return 1, nil },
				func() (int, error) { return 2, nil },
			})
		}, f).
		Stage("g", func(c *anytime.Context) error {
			return anytime.AsyncConsume(c, f, func(s anytime.Snapshot[int]) error {
				_, err := g.Publish(s.Value*100, s.Final)
				return err
			})
		}, g, f).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, _ := g.Latest()
	if snap.Value != 200 || !snap.Final {
		t.Errorf("graph output %+v", snap)
	}

	// Structural violations must be rejected.
	b := anytime.NewBuffer[int]("B", nil)
	if _, err := anytime.NewGraph().
		Stage("w1", func(*anytime.Context) error { return nil }, b).
		Stage("w2", func(*anytime.Context) error { return nil }, b).
		Build(); err == nil {
		t.Error("double writer accepted through facade")
	}
}

// TestPublicAPITracer records a run's publishes and renders a timeline.
func TestPublicAPITracer(t *testing.T) {
	out := anytime.NewBuffer[int]("stage", nil)
	tr := anytime.NewTracer()
	anytime.TraceBuffer(tr, out)
	tr.Start()
	a := anytime.New()
	if err := a.AddStage("s", func(c *anytime.Context) error {
		for i := 1; i <= 3; i++ {
			if _, err := out.Publish(i, i == 3); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Events()); got != 3 {
		t.Errorf("%d events", got)
	}
	var buf bytes.Buffer
	if err := anytime.WriteTimeline(tr, &buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stage") {
		t.Errorf("timeline missing buffer name:\n%s", buf.String())
	}
}

// TestPublicAPIStopAfter enforces a time budget through the facade.
func TestPublicAPIStopAfter(t *testing.T) {
	out := anytime.NewBuffer[int]("out", nil)
	a := anytime.New()
	if err := a.AddStage("slow", func(c *anytime.Context) error {
		for i := 1; ; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, false); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}); err != nil {
		t.Fatal(err)
	}
	cancel := anytime.StopAfter(a, 15*time.Millisecond)
	defer cancel()
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-a.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("budget did not stop the automaton")
	}
	if _, ok := out.Latest(); !ok {
		t.Error("no output at the budget deadline")
	}
}

// TestPublicAPISubscribe consumes a run's snapshots over a channel with
// latest-wins semantics.
func TestPublicAPISubscribe(t *testing.T) {
	out := anytime.NewBuffer[int]("out", nil)
	sub := out.Subscribe(context.Background())
	a := anytime.New()
	if err := a.AddStage("s", func(c *anytime.Context) error {
		for i := 1; i <= 50; i++ {
			if _, err := out.Publish(i, i == 50); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	var last anytime.Snapshot[int]
	for snap := range sub {
		last = snap
	}
	if !last.Final || last.Value != 50 {
		t.Errorf("subscription ended on %+v", last)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
}
