// Quickstart: the smallest useful anytime automaton.
//
// We compute the sum of a large data set as a diffusive anytime stage:
// elements are consumed in a pseudo-random order, and every snapshot is a
// population-weighted estimate of the final sum (paper §III-B2, input
// sampling on a non-idempotent reduction). The automaton guarantees the
// last snapshot is the exact sum — and we could have stopped at any of the
// earlier ones.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"anytime"
)

func main() {
	const n = 1 << 20

	// The data set: anything indexable. Here, a deterministic sequence.
	values := make([]int64, n)
	var exact int64
	for i := range values {
		values[i] = int64((i*i)%1000 - 350)
		exact += values[i]
	}

	// A bijective pseudo-random visit order: unbiased sampling, and every
	// element is still consumed exactly once.
	ord, err := anytime.PseudoRandom(n, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The reduction: worker-private accumulators, merged and weighted at
	// each snapshot.
	sum := anytime.Reduce[int64]{
		NewAcc:  func() int64 { return 0 },
		Consume: func(acc int64, idx int) int64 { return acc + values[idx] },
		Merge:   func(dst, src int64) int64 { return dst + src },
		Snapshot: func(merged int64, processed, total int) (int64, error) {
			// Addition is not idempotent, so estimates are scaled by
			// population/sample size (the paper's O'_i = O_i x n/i).
			return anytime.ScaleCount(merged, processed, total), nil
		},
	}

	out := anytime.NewBuffer[int64]("sum", nil)
	out.OnPublish(func(s anytime.Snapshot[int64]) {
		errPct := 100 * math.Abs(float64(s.Value-exact)) / math.Abs(float64(exact))
		fmt.Printf("version %2d%s: estimate %14d  (error %6.3f%%)\n",
			s.Version, mark(s.Final), s.Value, errPct)
	})

	a := anytime.New()
	if err := a.AddStage("sum", func(c *anytime.Context) error {
		return anytime.RunReduce(c, sum, out, ord, anytime.RoundConfig{
			Granularity: n / 16, // 16 snapshots
			Workers:     4,
		})
	}); err != nil {
		log.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	// We could Stop() whenever the estimate looks good enough; letting it
	// run guarantees the exact result.
	if err := a.Wait(); err != nil {
		log.Fatal(err)
	}
	final, _ := out.Latest()
	fmt.Printf("\nexact sum  %14d\nfinal snap %14d (final=%v)\n", exact, final.Value, final.Final)
}

func mark(final bool) string {
	if final {
		return " (precise)"
	}
	return "          "
}
