// Interactive: "hold-the-power-button computing" (paper §I).
//
// The paper imagines holding the enter key for as much precision as you
// want. This example plays that scenario: an image-sharpening automaton
// runs while a simulated user watches the output quality; the user pauses
// to inspect, resumes, and releases the button (stops) as soon as the
// output crosses their personal acceptability bar — which no profiler
// could have known in advance. The time and energy spent are governed
// directly by the acceptability of the output.
//
// Run:
//
//	go run ./examples/interactive [-accept 25] [-size 256]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"anytime"
)

func main() {
	accept := flag.Float64("accept", 25, "user's acceptability bar in dB (use a huge value to wait for precise)")
	size := flag.Int("size", 256, "image side length")
	flag.Parse()
	if err := run(*accept, *size); err != nil {
		log.Fatal(err)
	}
}

func run(acceptDB float64, side int) error {
	in, err := anytime.SyntheticGray(side, side, 77)
	if err != nil {
		return err
	}
	n := side * side
	ord, err := anytime.Tree2D(side, side)
	if err != nil {
		return err
	}

	// Precise reference, so the "user" can judge quality. (A real user
	// judges by eye; SNR stands in for their eyes here.)
	ref, err := anytime.NewGrayImage(side, side)
	if err != nil {
		return err
	}
	for p := 0; p < n; p++ {
		ref.Pix[p] = sharpen(in, p%side, p/side)
	}

	working, err := anytime.NewGrayImage(side, side)
	if err != nil {
		return err
	}
	filled := make([]bool, n)
	out := anytime.NewBuffer[*anytime.Image]("sharpened", nil)

	a := anytime.New()
	if err := a.AddStage("sharpen", func(c *anytime.Context) error {
		return anytime.MapSample(c, out, ord,
			func(dst int) error {
				working.Pix[dst] = sharpen(in, dst%side, dst/side)
				filled[dst] = true
				return nil
			},
			func(processed int) (*anytime.Image, error) {
				return anytime.HoldFill(working, filled)
			},
			anytime.RoundConfig{Granularity: n / 64, Workers: 2})
	}); err != nil {
		return err
	}

	start := time.Now()
	if err := a.Start(context.Background()); err != nil {
		return err
	}
	fmt.Printf("user holds the button (acceptability bar: %.1f dB)...\n", acceptDB)

	var last anytime.Version
	paused := false
	for {
		snap, err := out.WaitNewer(context.Background(), last)
		if err != nil {
			return err
		}
		last = snap.Version
		db, err := anytime.SNR(ref.Pix, snap.Value.Pix)
		if err != nil {
			return err
		}
		fmt.Printf("  %8v  version %3d  quality %s dB\n",
			time.Since(start).Round(time.Millisecond), snap.Version, anytime.FormatDB(db))

		// Halfway to the bar, the user pauses to take a closer look:
		// published output stays readable, no compute is spent.
		if !paused && db >= acceptDB/2 {
			paused = true
			a.Pause()
			fmt.Println("  user pauses to inspect the output (automaton frozen, output valid)")
			time.Sleep(30 * time.Millisecond)
			inspect, _ := out.Latest()
			fmt.Printf("  inspected version %d while paused; resuming\n", inspect.Version)
			a.Resume()
		}
		if db >= acceptDB || snap.Final {
			fmt.Println("user releases the button.")
			a.Stop()
			break
		}
	}
	if err := a.Wait(); err != nil && !errors.Is(err, anytime.ErrStopped) {
		return err
	}
	final, _ := out.Latest()
	db, err := anytime.SNR(ref.Pix, final.Value.Pix)
	if err != nil {
		return err
	}
	fmt.Printf("delivered version %d at %s dB after %v (precise=%v)\n",
		final.Version, anytime.FormatDB(db), time.Since(start).Round(time.Millisecond), final.Final)
	return nil
}

// sharpen applies a clamped 3x3 unsharp kernel at (x, y).
func sharpen(im *anytime.Image, x, y int) int32 {
	center := im.Gray(x, y)
	var sum int32
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			xx, yy := clamp(x+dx, im.W), clamp(y+dy, im.H)
			sum += im.Gray(xx, yy)
		}
	}
	v := center + (center - (sum+4)/9)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
