// Blurpipeline: a two-stage asynchronous image pipeline built on the public
// API — the shape of the paper's 2dconv benchmark plus a dependent stage.
//
// Stage 1 (diffusive) blurs a synthetic image, computing output pixels in
// 2D tree order so every snapshot is a complete low-resolution image.
// Stage 2 (async consumer, also anytime) thresholds whichever blurred
// snapshot is current into an edge map. Both buffers converge to their
// precise contents; snapshots are written as PGM files you can open in any
// viewer.
//
// Run:
//
//	go run ./examples/blurpipeline [-size 256] [-outdir .]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"anytime"
)

func main() {
	size := flag.Int("size", 256, "image side length")
	outdir := flag.String("outdir", ".", "where to write PGM snapshots")
	flag.Parse()
	if err := run(*size, *outdir); err != nil {
		log.Fatal(err)
	}
}

func run(side int, outdir string) error {
	in, err := anytime.SyntheticGray(side, side, 11)
	if err != nil {
		return err
	}
	ord, err := anytime.Tree2D(side, side)
	if err != nil {
		return err
	}
	n := side * side

	// Stage 1: tree-sampled 5x5 box blur.
	blurWork, err := anytime.NewGrayImage(side, side)
	if err != nil {
		return err
	}
	blurFilled := make([]bool, n)
	blurred := anytime.NewBuffer[*anytime.Image]("blurred", nil)

	// Stage 2: threshold the blurred image into a binary edge-ish map.
	threshWork, err := anytime.NewGrayImage(side, side)
	if err != nil {
		return err
	}
	thresholded := anytime.NewBuffer[*anytime.Image]("thresholded", nil)

	a := anytime.New()
	if err := a.AddStage("blur", func(c *anytime.Context) error {
		return anytime.MapSample(c, blurred, ord,
			func(dst int) error {
				x, y := dst%side, dst/side
				blurWork.Pix[dst] = boxBlur(in, x, y)
				blurFilled[dst] = true
				return nil
			},
			func(processed int) (*anytime.Image, error) {
				return anytime.HoldFill(blurWork, blurFilled)
			},
			anytime.RoundConfig{Granularity: n / 8, Workers: 2})
	}); err != nil {
		return err
	}
	if err := a.AddStage("threshold", func(c *anytime.Context) error {
		return anytime.AsyncConsume(c, blurred, func(s anytime.Snapshot[*anytime.Image]) error {
			// The child is itself anytime: one diffusive pass per consumed
			// snapshot, final only on the parent's final version.
			return anytime.DiffusivePass(c, thresholded, n,
				func(worker, pos int) error {
					dst := ord.At(pos)
					if s.Value.Pix[dst] > 128 {
						threshWork.Pix[dst] = 255
					} else {
						threshWork.Pix[dst] = 0
					}
					return nil
				},
				func(processed int) (*anytime.Image, error) {
					return threshWork.CloneInto(nil), nil
				},
				anytime.RoundConfig{Granularity: n / 4, Workers: 2},
				s.Final)
		})
	}); err != nil {
		return err
	}

	// Record what the whole application output looks like over time.
	count := 0
	thresholded.OnPublish(func(s anytime.Snapshot[*anytime.Image]) {
		count++
		if count%4 == 0 || s.Final {
			name := fmt.Sprintf("blurpipeline_v%03d.pgm", s.Version)
			if s.Final {
				name = "blurpipeline_final.pgm"
			}
			path := filepath.Join(outdir, name)
			if err := anytime.WritePNMFile(path, s.Value); err != nil {
				log.Printf("write %s: %v", path, err)
				return
			}
			fmt.Printf("version %3d (final=%v) -> %s\n", s.Version, s.Final, path)
		}
	})

	if err := a.Start(context.Background()); err != nil {
		return err
	}
	if err := a.Wait(); err != nil {
		return err
	}
	fmt.Println("precise output reached; every earlier snapshot was a valid approximation")
	return nil
}

// boxBlur computes the 5x5 clamped box mean at (x, y).
func boxBlur(im *anytime.Image, x, y int) int32 {
	var sum, cnt int32
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			xx, yy := clamp(x+dx, im.W), clamp(y+dy, im.H)
			sum += im.Gray(xx, yy)
			cnt++
		}
	}
	return (sum + cnt/2) / cnt
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
