// Pipelinegraph: the paper's Figure 1 program as an explicit, validated
// dataflow graph, with a live timeline of every stage's publishes.
//
//	prologue(); f(); g(); h(); i(); epilogue();
//
// becomes the DAG f -> {g, h} -> i. Each stage is anytime; the graph
// builder enforces the model's structural properties (one writer per
// buffer, acyclicity) before anything runs, and the tracer renders the
// Figure 2 timeline the pipeline actually produced.
//
// Run:
//
//	go run ./examples/pipelinegraph
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"anytime"
)

const n = 1 << 18

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Input: a synthetic sensor array.
	input := make([]int64, n)
	for i := range input {
		input[i] = int64((i*i)%997 - 450)
	}
	ord, err := anytime.PseudoRandom(n, 17)
	if err != nil {
		return err
	}

	fBuf := anytime.NewBuffer[int64]("f:sum", nil)
	gBuf := anytime.NewBuffer[float64]("g:mean", nil)
	hBuf := anytime.NewBuffer[int64]("h:magnitude", nil)
	iBuf := anytime.NewBuffer[string]("i:report", nil)

	tr := anytime.NewTracer()
	anytime.TraceBuffer(tr, fBuf)
	anytime.TraceBuffer(tr, gBuf)
	anytime.TraceBuffer(tr, hBuf)
	anytime.TraceBuffer(tr, iBuf)

	// f: anytime weighted sum of a per-element sensor computation
	// (diffusive input sampling). The xorshift rounds stand in for real
	// per-sample processing so the pipeline visibly overlaps.
	fStage := func(c *anytime.Context) error {
		var acc int64
		return anytime.Diffusive(c, fBuf, n,
			func(pos int) error {
				v := uint64(input[ord.At(pos)]) + 0x9E3779B97F4A7C15
				for r := 0; r < 256; r++ {
					v ^= v << 13
					v ^= v >> 7
					v ^= v << 17
				}
				acc += input[ord.At(pos)] + int64(v&1) - int64(v&1) // work feeds the result
				return nil
			},
			func(processed int) (int64, error) {
				return anytime.ScaleCount(acc, processed, n), nil
			},
			anytime.RoundConfig{Granularity: n / 8})
	}
	// g: mean of whatever sum estimate is current.
	gStage := func(c *anytime.Context) error {
		return anytime.AsyncConsume(c, fBuf, func(s anytime.Snapshot[int64]) error {
			_, err := gBuf.Publish(float64(s.Value)/n, s.Final)
			return err
		})
	}
	// h: magnitude bucket of the current sum.
	hStage := func(c *anytime.Context) error {
		return anytime.AsyncConsume(c, fBuf, func(s anytime.Snapshot[int64]) error {
			mag := int64(1)
			for v := s.Value; v > 9 || v < -9; v /= 10 {
				mag++
			}
			_, err := hBuf.Publish(mag, s.Final)
			return err
		})
	}
	// i: human-readable report joining g and h. On g's final version it
	// waits for h's final as well, so i's last publish is the precise
	// whole-application output.
	iStage := func(c *anytime.Context) error {
		var lastH anytime.Snapshot[int64]
		return anytime.AsyncConsume(c, gBuf, func(s anytime.Snapshot[float64]) error {
			if snap, ok := hBuf.Latest(); ok {
				lastH = snap
			}
			if s.Final {
				for !lastH.Final {
					snap, err := hBuf.WaitNewer(c.Context(), lastH.Version)
					if err != nil {
						return anytime.ErrStopped
					}
					lastH = snap
				}
			}
			report := fmt.Sprintf("mean=%.3f magnitude=10^%d", s.Value, lastH.Value)
			_, err := iBuf.Publish(report, s.Final)
			return err
		})
	}

	a, err := anytime.NewGraph().
		Stage("f", fStage, fBuf).
		Stage("g", gStage, gBuf, fBuf).
		Stage("h", hStage, hBuf, fBuf).
		Stage("i", iStage, iBuf, gBuf, hBuf).
		Build()
	if err != nil {
		return err
	}

	tr.Start()
	if err := a.Start(context.Background()); err != nil {
		return err
	}
	var last anytime.Version
	for {
		snap, err := iBuf.WaitNewer(context.Background(), last)
		if err != nil {
			return err
		}
		last = snap.Version
		fmt.Printf("O%d%s: %s\n", snap.Version, mark(snap.Final), snap.Value)
		if snap.Final {
			break
		}
	}
	if err := a.Wait(); err != nil {
		return err
	}
	fmt.Println()
	return anytime.WriteTimeline(tr, os.Stdout, 72)
}

func mark(final bool) string {
	if final {
		return " (precise)"
	}
	return ""
}
