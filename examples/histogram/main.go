// Histogram: a terminal rendition of paper Figure 3 — anytime histogram
// construction via input sampling with a pseudo-random permutation.
//
// The stage samples the pixels of a synthetic image in LFSR order and
// publishes population-weighted histograms; each published version is drawn
// as an ASCII bar chart, visibly converging to the exact histogram.
//
// Run:
//
//	go run ./examples/histogram
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"anytime"
)

const bins = 16

type hist struct {
	counts [bins]int64
}

func main() {
	const side = 256
	img, err := anytime.SyntheticGray(side, side, 9)
	if err != nil {
		log.Fatal(err)
	}
	n := side * side

	ord, err := anytime.PseudoRandom(n, 3)
	if err != nil {
		log.Fatal(err)
	}

	reduce := anytime.Reduce[*hist]{
		NewAcc: func() *hist { return &hist{} },
		Consume: func(acc *hist, idx int) *hist {
			acc.counts[int(img.Pix[idx])*bins/256]++
			return acc
		},
		Merge: func(dst, src *hist) *hist {
			for b := range dst.counts {
				dst.counts[b] += src.counts[b]
			}
			return dst
		},
		Snapshot: func(merged *hist, processed, total int) (*hist, error) {
			// Weight the sampled counts up to the full population so every
			// snapshot estimates the final histogram (paper Figure 3).
			for b := range merged.counts {
				merged.counts[b] = anytime.ScaleCount(merged.counts[b], processed, total)
			}
			return merged, nil
		},
	}

	out := anytime.NewBuffer[*hist]("hist", nil)
	version := 0
	out.OnPublish(func(s anytime.Snapshot[*hist]) {
		version++
		label := fmt.Sprintf("after sample %d/4", version)
		if s.Final {
			label = "precise (all pixels)"
		}
		draw(label, s.Value)
	})

	a := anytime.New()
	if err := a.AddStage("hist", func(c *anytime.Context) error {
		return anytime.RunReduce(c, reduce, out, ord, anytime.RoundConfig{
			Granularity: n / 4,
			Workers:     2,
		})
	}); err != nil {
		log.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		log.Fatal(err)
	}
}

func draw(label string, h *hist) {
	var peak int64 = 1
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	fmt.Printf("\n%s:\n", label)
	for b, c := range h.counts {
		bar := int(c * 48 / peak)
		fmt.Printf("  [%3d-%3d] %-48s %d\n", b*256/bins, (b+1)*256/bins-1, strings.Repeat("#", bar), c)
	}
}
