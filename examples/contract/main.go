// Contract: the other half of the anytime taxonomy (paper §II-B).
//
// Interruptible anytime algorithms — the automaton's native mode — can be
// stopped at any moment. Contract algorithms are handed a time budget up
// front and schedule their own computations to meet it ("design-to-time").
// This example runs the same multi-resolution estimator both ways:
//
//   - contract mode picks the most accurate resolution whose estimated cost
//     fits the budget, then upgrades if time is left over;
//   - interruptible mode just runs and is stopped at the deadline.
//
// Run:
//
//	go run ./examples/contract [-budget 30ms]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"anytime"
)

// estimatePi estimates pi by counting lattice points inside the quarter
// circle at the given grid resolution — a natural multi-resolution
// computation whose cost grows quadratically with resolution.
func estimatePi(resolution int) float64 {
	inside := 0
	r2 := float64(resolution) * float64(resolution)
	for y := 0; y < resolution; y++ {
		for x := 0; x < resolution; x++ {
			fx, fy := float64(x)+0.5, float64(y)+0.5
			if fx*fx+fy*fy <= r2 {
				inside++
			}
		}
	}
	return 4 * float64(inside) / (r2)
}

func main() {
	budget := flag.Duration("budget", 30*time.Millisecond, "time contract / interrupt deadline")
	flag.Parse()
	if err := run(*budget); err != nil {
		log.Fatal(err)
	}
}

func run(budget time.Duration) error {
	resolutions := []int{256, 1024, 4096, 16384}

	// Calibrate cost estimates from the coarsest level (cost ~ r^2).
	start := time.Now()
	estimatePi(resolutions[0])
	unit := time.Since(start)
	if unit <= 0 {
		unit = time.Microsecond
	}

	// Contract mode.
	passes := make([]anytime.ContractPass[float64], len(resolutions))
	for i, r := range resolutions {
		scale := float64(r*r) / float64(resolutions[0]*resolutions[0])
		passes[i] = anytime.ContractPass[float64]{
			Name:    fmt.Sprintf("grid %dx%d", r, r),
			EstCost: time.Duration(float64(unit) * scale),
			Run:     func() (float64, error) { return estimatePi(r), nil },
		}
	}
	contractOut := anytime.NewBuffer[float64]("contract", nil)
	a := anytime.New()
	var ran int
	if err := a.AddStage("pi", func(c *anytime.Context) error {
		var err error
		ran, err = anytime.RunContract(c, contractOut, passes, budget)
		return err
	}); err != nil {
		return err
	}
	start = time.Now()
	if err := a.Start(context.Background()); err != nil {
		return err
	}
	if err := a.Wait(); err != nil {
		return err
	}
	snap, _ := contractOut.Latest()
	fmt.Printf("contract (%v budget): ran %s in %v -> pi ~= %.6f (error %.2e, final=%v)\n",
		budget, passes[ran].Name, time.Since(start).Round(time.Millisecond),
		snap.Value, math.Abs(snap.Value-math.Pi), snap.Final)

	// Interruptible mode: a diffusive row-sampled estimator at the finest
	// resolution, stopped at the deadline.
	const res = 16384
	// Rows are sampled in tree (bit-reverse) order: sequential order would
	// bias the estimate toward the top of the circle, the memory-order
	// bias §III-B2 warns about.
	ord, err := anytime.Tree1D(res)
	if err != nil {
		return err
	}
	intOut := anytime.NewBuffer[float64]("interruptible", nil)
	b := anytime.New()
	if err := b.AddStage("pi", func(c *anytime.Context) error {
		inside := 0
		r2 := float64(res) * float64(res)
		return anytime.Diffusive(c, intOut, res,
			func(pos int) error {
				// Scan the row point by point — the same per-sample work
				// the contract passes do, so the comparison is honest.
				fy := float64(ord.At(pos)) + 0.5
				for x := 0; x < res; x++ {
					fx := float64(x) + 0.5
					if fx*fx+fy*fy <= r2 {
						inside++
					}
				}
				return nil
			},
			func(processed int) (float64, error) {
				if processed == 0 {
					return 0, nil
				}
				return 4 * float64(inside) / (float64(processed) * float64(res)), nil
			},
			anytime.RoundConfig{Granularity: res / 256})
	}); err != nil {
		return err
	}
	cancel := anytime.StopAfter(b, budget)
	defer cancel()
	start = time.Now()
	if err := b.Start(context.Background()); err != nil {
		return err
	}
	if err := b.Wait(); err != nil && !errors.Is(err, anytime.ErrStopped) {
		return err
	}
	isnap, ok := intOut.Latest()
	if !ok {
		return fmt.Errorf("interruptible run produced no output in %v", budget)
	}
	fmt.Printf("interruptible (stopped at %v): version %d in %v -> pi ~= %.6f (error %.2e, final=%v)\n",
		budget, isnap.Version, time.Since(start).Round(time.Millisecond),
		isnap.Value, math.Abs(isnap.Value-math.Pi), isnap.Final)
	return nil
}
