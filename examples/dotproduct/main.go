// Dotproduct: paper Figure 6 — an anytime reduced-precision fixed-point
// dot product, computed bit-serially.
//
// A two's-complement integer is a sum of signed powers of two, so the dot
// product I · W distributes over W's bit planes. Processing the planes
// most-significant-first with a sequential sampling permutation makes the
// computation diffusive: after k planes the running result equals the dot
// product at k-bit precision, and after all planes it is exact — with no
// more arithmetic than the precise computation (integer multiplication is
// a sum of partial products anyway).
//
// Run:
//
//	go run ./examples/dotproduct
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"anytime"
)

const width = 16 // operand precision in bits

func main() {
	const n = 1 << 16
	i16 := make([]int64, n) // I operand (kept full precision)
	w16 := make([]int32, n) // W operand (sampled bit-serially)
	for j := 0; j < n; j++ {
		i16[j] = int64(int16(uint16(j*31 + 7)))
		w16[j] = int32(int16(uint16(j*j*17 + 3)))
	}
	var exact int64
	for j := 0; j < n; j++ {
		exact += i16[j] * int64(w16[j])
	}

	// The data set is the bit planes of W, in MSB-first priority order —
	// the paper's sequential permutation for priority-ordered sets.
	ord, err := anytime.Sequential(width)
	if err != nil {
		log.Fatal(err)
	}

	var acc int64
	out := anytime.NewBuffer[int64]("dot", nil)
	out.OnPublish(func(s anytime.Snapshot[int64]) {
		rel := 0.0
		if exact != 0 {
			rel = 100 * math.Abs(float64(s.Value-exact)) / math.Abs(float64(exact))
		}
		fmt.Printf("%2d-bit precision: %16d  (error %8.4f%%)%s\n",
			s.Version, s.Value, rel, finalMark(s.Final))
	})

	a := anytime.New()
	if err := a.AddStage("dot", func(c *anytime.Context) error {
		return anytime.Diffusive(c, out, ord.Len(),
			func(pos int) error {
				plane := uint(width - 1 - ord.At(pos)) // MSB first
				var sum int64
				for j := 0; j < n; j++ {
					sum += i16[j] * int64(planeValue(w16[j], plane))
				}
				acc += sum
				return nil
			},
			func(processed int) (int64, error) { return acc, nil },
			anytime.RoundConfig{Granularity: 1}) // publish after every plane
	}); err != nil {
		log.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact dot product: %d\n", exact)
}

// planeValue is the signed contribution of one bit plane of a width-bit
// two's-complement value (the sign plane contributes negatively).
func planeValue(v int32, plane uint) int32 {
	if (uint32(v)>>plane)&1 == 0 {
		return 0
	}
	if plane == width-1 {
		return -(int32(1) << plane)
	}
	return int32(1) << plane
}

func finalMark(final bool) string {
	if final {
		return "  <- precise"
	}
	return ""
}
