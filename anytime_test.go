package anytime_test

// Integration tests exercising the public API exactly as a downstream user
// would: building automata from the facade package only.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"anytime"
)

// TestPublicAPIDiffusiveReduce builds the paper's canonical input-sampling
// reduction (an anytime sum with population weighting) through the facade.
func TestPublicAPIDiffusiveReduce(t *testing.T) {
	const n = 10000
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i % 97)
		want += values[i]
	}
	ord, err := anytime.PseudoRandom(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	sum := anytime.Reduce[int64]{
		NewAcc:  func() int64 { return 0 },
		Consume: func(acc int64, idx int) int64 { return acc + values[idx] },
		Merge:   func(dst, src int64) int64 { return dst + src },
		Snapshot: func(merged int64, processed, total int) (int64, error) {
			return anytime.ScaleCount(merged, processed, total), nil
		},
	}
	out := anytime.NewBuffer[int64]("sum", nil)
	a := anytime.New()
	if err := a.AddStage("sum", func(c *anytime.Context) error {
		return anytime.RunReduce(c, sum, out, ord, anytime.RoundConfig{Granularity: n / 8, Workers: 2})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, ok := out.Latest()
	if !ok || !snap.Final || snap.Value != want {
		t.Errorf("final sum = %+v ok=%v, want %d", snap, ok, want)
	}
}

// TestPublicAPIPipelineWithInterrupt builds a two-stage async pipeline and
// interrupts it, checking the interruptibility contract end to end.
func TestPublicAPIPipelineWithInterrupt(t *testing.T) {
	const n = 1 << 14
	ord, err := anytime.Tree1D(n)
	if err != nil {
		t.Fatal(err)
	}
	squares := anytime.NewBuffer[[]int64]("squares", func(s []int64) []int64 {
		return append([]int64(nil), s...)
	})
	total := anytime.NewBuffer[int64]("total", nil)
	working := make([]int64, n)

	a := anytime.New()
	if err := a.AddStage("square", func(c *anytime.Context) error {
		return anytime.MapSample(c, squares, ord,
			func(dst int) error {
				working[dst] = int64(dst) * int64(dst)
				time.Sleep(time.Microsecond) // keep the run interruptible
				return nil
			},
			func(processed int) ([]int64, error) { return working, nil },
			anytime.RoundConfig{Granularity: n / 64})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("sum", func(c *anytime.Context) error {
		return anytime.AsyncConsume(c, squares, func(s anytime.Snapshot[[]int64]) error {
			var acc int64
			for _, v := range s.Value {
				acc += v
			}
			_, err := total.Publish(acc, s.Final)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Wait for at least one whole-application output, then interrupt.
	if _, err := total.WaitNewer(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	a.Stop()
	if err := a.Wait(); err != nil && !errors.Is(err, anytime.ErrStopped) {
		t.Fatalf("Wait = %v", err)
	}
	if _, ok := total.Latest(); !ok {
		t.Error("no approximate output after interrupt")
	}
}

// TestPublicAPISyncPipeline folds a distributive consumer over a diffusive
// producer's update stream via the facade.
func TestPublicAPISyncPipeline(t *testing.T) {
	stream, err := anytime.NewStream[int](2)
	if err != nil {
		t.Fatal(err)
	}
	out := anytime.NewBuffer[int]("out", nil)
	a := anytime.New()
	if err := a.AddStage("f", func(c *anytime.Context) error {
		for i := 1; i <= 10; i++ {
			u := anytime.Update[int]{Seq: i, Data: i, Last: i == 10}
			if err := stream.Send(c, u); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *anytime.Context) error {
		acc := 0
		return anytime.SyncConsume(c, stream, func(u anytime.Update[int]) error {
			acc += u.Data
			_, err := out.Publish(acc, u.Last)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, _ := out.Latest()
	if snap.Value != 55 || !snap.Final {
		t.Errorf("sync pipeline output = %+v", snap)
	}
}

// TestPublicAPIImageAndMetrics drives the image helpers and SNR through the
// facade: a tree-sampled identity map must converge to the input with
// rising SNR.
func TestPublicAPIImageAndMetrics(t *testing.T) {
	const side = 32
	in, err := anytime.SyntheticGray(side, side, 5)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := anytime.Tree2D(side, side)
	if err != nil {
		t.Fatal(err)
	}
	working, err := anytime.NewGrayImage(side, side)
	if err != nil {
		t.Fatal(err)
	}
	filled := make([]bool, side*side)
	out := anytime.NewBuffer[*anytime.Image]("img", nil)
	var snrs []float64
	out.OnPublish(func(s anytime.Snapshot[*anytime.Image]) {
		db, err := anytime.SNR(in.Pix, s.Value.Pix)
		if err != nil {
			t.Error(err)
			return
		}
		snrs = append(snrs, db)
	})
	a := anytime.New()
	if err := a.AddStage("copy", func(c *anytime.Context) error {
		return anytime.MapSample(c, out, ord,
			func(dst int) error {
				working.Pix[dst] = in.Pix[dst]
				filled[dst] = true
				return nil
			},
			func(processed int) (*anytime.Image, error) {
				return anytime.HoldFill(working, filled)
			},
			anytime.RoundConfig{Granularity: side * side / 8})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(snrs) != 8 {
		t.Fatalf("%d snapshots", len(snrs))
	}
	if !math.IsInf(snrs[len(snrs)-1], 1) {
		t.Errorf("final SNR %v", snrs[len(snrs)-1])
	}
	if snrs[0] < 5 {
		t.Errorf("first snapshot SNR %v; hold-fill rendering broken", snrs[0])
	}
	if anytime.FormatDB(snrs[len(snrs)-1]) != "inf" {
		t.Error("FormatDB(inf) wrong")
	}
}

// TestPublicAPIPauseResume verifies the pause gate through the facade.
func TestPublicAPIPauseResume(t *testing.T) {
	out := anytime.NewBuffer[int]("out", nil)
	a := anytime.New()
	if err := a.AddStage("s", func(c *anytime.Context) error {
		return anytime.Diffusive(c, out, 1000,
			func(pos int) error { time.Sleep(50 * time.Microsecond); return nil },
			func(processed int) (int, error) { return processed, nil },
			anytime.RoundConfig{Granularity: 10})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := out.WaitNewer(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	a.Pause()
	time.Sleep(5 * time.Millisecond)
	v1, _ := out.Latest()
	time.Sleep(20 * time.Millisecond)
	v2, _ := out.Latest()
	if v2.Version > v1.Version+1 {
		t.Errorf("buffer advanced from %d to %d while paused", v1.Version, v2.Version)
	}
	a.Resume()
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if snap, _ := out.Latest(); !snap.Final || snap.Value != 1000 {
		t.Errorf("final = %+v", snap)
	}
}
