package anytime

import (
	"io"
	"net/http"

	"anytime/internal/core"
	"anytime/internal/telemetry"
)

// Hooks is the automaton's observer interface (in the style of
// net/http/httptrace.ClientTrace): optional callbacks fired at lifecycle
// and scheduling edges. Attach one with Automaton.SetHooks before Start; an
// automaton with no hooks pays only a nil check on its hot paths.
type Hooks = core.Hooks

// MetricsRegistry is a lock-cheap registry of counters, gauges, and atomic
// log-scale histograms — the runtime observability substrate behind
// anytimed's /metrics endpoint and the anytime CLI's -telemetry summary.
// Instruments are created on first use and safe for concurrent update from
// every stage goroutine.
type MetricsRegistry = telemetry.Registry

// MetricLabels attach dimensions (stage, buffer, route) to an instrument.
type MetricLabels = telemetry.Labels

// Counter is a monotonically increasing counter.
type Counter = telemetry.Counter

// Gauge is an instantaneous signed value (queue depth, in-flight work).
type Gauge = telemetry.Gauge

// MetricHistogram is a lock-free fixed log2-bucket histogram.
type MetricHistogram = telemetry.Histogram

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// PipelineHooks returns a Hooks value recording a running automaton's
// scheduling behavior (checkpoint latency, pause waits, stage and run
// durations, active counts) into reg. Attach with Automaton.SetHooks before
// Start; one value may be shared by many automata.
func PipelineHooks(reg *MetricsRegistry) *Hooks { return telemetry.PipelineHooks(reg) }

// ObserveBuffer registers a telemetry observer on buf recording publish
// counts, the version watermark, finalization, and publish intervals into
// reg. It coexists with a Tracer on the same buffer; attach before Start.
func ObserveBuffer[T any](reg *MetricsRegistry, buf *Buffer[T]) {
	telemetry.ObserveBuffer(reg, buf)
}

// ObserveStream registers a depth observer on the synchronous edge st,
// recording the in-flight update count and its high-water mark into reg
// under the given edge label. Attach before Start.
func ObserveStream[X any](reg *MetricsRegistry, st *Stream[X], edge string) {
	telemetry.ObserveStream(reg, st, edge)
}

// WriteMetrics renders every registered series in the Prometheus text
// exposition format.
func WriteMetrics(reg *MetricsRegistry, w io.Writer) error { return reg.WritePrometheus(w) }

// MetricsHandler returns an http.Handler serving the registry in Prometheus
// text exposition format — mount it at /metrics.
func MetricsHandler(reg *MetricsRegistry) http.Handler { return reg.Handler() }

// WriteMetricsSummary renders a human-readable table of every series — the
// report the anytime CLI prints on exit with -telemetry.
func WriteMetricsSummary(reg *MetricsRegistry, w io.Writer) error { return reg.WriteSummary(w) }

// AccuracyRecorder samples a buffer's accuracy-versus-wallclock curve — the
// live equivalent of the paper's §V runtime–accuracy profiles. SNR against
// the precise reference is computed lazily at export time, so recording
// never delays the pipeline being measured.
type AccuracyRecorder = telemetry.AccuracyRecorder

// AccuracySample is one exported point of an accuracy-versus-time curve.
type AccuracySample = telemetry.AccuracySample

// NewAccuracyRecorder returns a recorder comparing published images against
// the precise reference ref. Call its Begin immediately before Start.
func NewAccuracyRecorder(ref *Image) *AccuracyRecorder {
	return telemetry.NewAccuracyRecorder(ref)
}

// ObserveAccuracy attaches rec as a publish observer of buf; it coexists
// with tracers and metric observers on the same buffer. Attach before
// Start.
func ObserveAccuracy(rec *AccuracyRecorder, buf *Buffer[*Image]) {
	telemetry.ObserveAccuracy(rec, buf)
}

// Metric names of the pipeline instrument families PipelineHooks,
// ObserveBuffer, and ObserveStream register, so downstream dashboards and
// tests don't hardcode strings.
const (
	MetricCheckpointLatency = telemetry.MetricCheckpointLatency
	MetricCheckpointTotal   = telemetry.MetricCheckpointTotal
	MetricPauseWait         = telemetry.MetricPauseWait
	MetricStageDuration     = telemetry.MetricStageDuration
	MetricStagesActive      = telemetry.MetricStagesActive
	MetricRunsTotal         = telemetry.MetricRunsTotal
	MetricRunDuration       = telemetry.MetricRunDuration
	MetricAutomataActive    = telemetry.MetricAutomataActive
	MetricBufferPublish     = telemetry.MetricBufferPublish
	MetricBufferVersion     = telemetry.MetricBufferVersion
	MetricBufferFinal       = telemetry.MetricBufferFinal
	MetricPublishInterval   = telemetry.MetricPublishInterval
	MetricStreamDepth       = telemetry.MetricStreamDepth
	MetricStreamDepthMax    = telemetry.MetricStreamDepthMax
)
