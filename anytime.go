// Package anytime is the public API of this implementation of the Anytime
// Automaton computation model (Joshua San Miguel and Natalie Enright
// Jerger, "The Anytime Automaton", ISCA 2016).
//
// An anytime automaton executes an approximate application as a parallel
// pipeline of anytime computation stages. Each stage publishes intermediate
// outputs of increasing accuracy into a versioned single-writer Buffer; the
// automaton guarantees that the final, bit-precise output is eventually
// published, and it can be paused or stopped at any moment while its output
// buffers still hold valid approximations.
//
// # Building an automaton
//
//	a := anytime.New()
//	out := anytime.NewBuffer[*Result]("out", cloneResult)
//	a.AddStage("compute", func(c *anytime.Context) error {
//	    return anytime.Diffusive(c, out, total, apply, snapshot, anytime.RoundConfig{})
//	})
//	a.Start(ctx)
//	...
//	a.Stop()                  // or a.Wait() for the precise output
//	snap, _ := out.Latest()   // always a valid approximation
//
// Three stage shapes cover the paper's constructions: Iterative re-executes
// a computation at increasing accuracy (§III-B1); Diffusive applies
// permuted in-place updates so that no work is redundant (§III-B2);
// AsyncConsume chains stages into an asynchronous pipeline (§III-C1), and
// Stream/SyncConsume into a synchronous one for distributive consumers
// (§III-C2). Sampling permutations (sequential, N-dimensional tree,
// LFSR pseudo-random) come from the same package, as do input/output
// sampling stage builders and SNR accuracy metrics.
//
// The packages under internal/apps implement the paper's five evaluation
// benchmarks on top of this API, and internal/harness regenerates every
// figure of the paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package anytime

import (
	"time"

	"anytime/internal/core"
)

// Version numbers the successive snapshots published to a Buffer.
type Version = core.Version

// Snapshot is one immutable published output of a stage.
type Snapshot[T any] = core.Snapshot[T]

// Buffer is the versioned single-writer output buffer of an anytime stage
// (paper Properties 2 and 3).
type Buffer[T any] = core.Buffer[T]

// Automaton supervises the parallel pipeline of stages.
type Automaton = core.Automaton

// Context is the per-stage execution context; stages call its Checkpoint
// between units of work so Pause and Stop take effect promptly.
type Context = core.Context

// RoundConfig tunes a diffusive stage's publish granularity, worker count,
// and publish policy.
type RoundConfig = core.RoundConfig

// PublishPolicy selects when a diffusive stage constructs and publishes a
// round snapshot (§III-B2 granularity versus §IV-C overheads).
type PublishPolicy = core.PublishPolicy

const (
	// PublishEveryRound publishes after every round — the paper's default
	// granularity model.
	PublishEveryRound = core.PublishEveryRound
	// PublishOnDemand skips snapshot construction while nobody has consumed
	// the previous version (§III-C1: the consumer "processes whichever
	// output happens to be in the buffer").
	PublishOnDemand = core.PublishOnDemand
	// PublishAdaptive widens the publish interval until snapshot overhead
	// stays within RoundConfig.PublishBudget of stage time.
	PublishAdaptive = core.PublishAdaptive
)

// DefaultPublishBudget is PublishAdaptive's overhead target when
// RoundConfig.PublishBudget is zero.
const DefaultPublishBudget = core.DefaultPublishBudget

// Update is one diffusive update flowing through a synchronous edge.
type Update[X any] = core.Update[X]

// Stream is the synchronous pipeline edge between a diffusive producer and
// a distributive consumer.
type Stream[X any] = core.Stream[X]

// ErrStopped is returned by Automaton.Wait when execution was interrupted
// before the precise output; the output buffers hold the latest
// approximations.
var ErrStopped = core.ErrStopped

// ErrFinalized is returned when publishing past a buffer's final output.
var ErrFinalized = core.ErrFinalized

// New returns an empty automaton ready for stage registration.
func New() *Automaton { return core.New() }

// NewBuffer returns an empty versioned buffer. clone, if non-nil,
// deep-copies values at publish time so readers never alias the stage's
// working state.
func NewBuffer[T any](name string, clone func(T) T) *Buffer[T] {
	return core.NewBuffer[T](name, clone)
}

// NewStream returns a synchronous edge whose buffer holds up to capacity
// in-flight updates.
func NewStream[X any](capacity int) (*Stream[X], error) {
	return core.NewStream[X](capacity)
}

// Iterative runs the intermediate computations f_1 … f_n in order,
// publishing each result; the last pass is the precise output (§III-B1).
func Iterative[T any](c *Context, out *Buffer[T], passes []func() (T, error)) error {
	return core.Iterative(c, out, passes)
}

// Diffusive executes total in-place update steps in publish rounds,
// publishing an approximate snapshot after every round and the precise
// output after the last (§III-B2).
func Diffusive[T any](c *Context, out *Buffer[T], total int, apply func(pos int) error, snapshot func(processed int) (T, error), cfg RoundConfig) error {
	return core.Diffusive(c, out, total, apply, snapshot, cfg)
}

// DiffusiveWorkers is Diffusive with the executing worker's index exposed
// to apply, for worker-private accumulators (§IV-C1).
func DiffusiveWorkers[T any](c *Context, out *Buffer[T], total int, apply func(worker, pos int) error, snapshot func(processed int) (T, error), cfg RoundConfig) error {
	return core.DiffusiveWorkers(c, out, total, apply, snapshot, cfg)
}

// DiffusivePass is DiffusiveWorkers with caller control over whether the
// pass's last snapshot is the buffer's final output — required when an
// anytime child re-runs one pass per consumed parent snapshot.
func DiffusivePass[T any](c *Context, out *Buffer[T], total int, apply func(worker, pos int) error, snapshot func(processed int) (T, error), cfg RoundConfig, markFinal bool) error {
	return core.DiffusivePass(c, out, total, apply, snapshot, cfg, markFinal)
}

// AsyncConsume implements the child side of an asynchronous pipeline edge
// (§III-C1): fn runs on successive parent snapshots, skipping stale ones,
// and always runs on the parent's final snapshot.
func AsyncConsume[I any](c *Context, in *Buffer[I], fn func(snap Snapshot[I]) error) error {
	return core.AsyncConsume(c, in, fn)
}

// SyncConsume implements the consumer side of a synchronous edge (§III-C2):
// fold processes every update exactly once, in order.
func SyncConsume[X any](c *Context, in *Stream[X], fold func(u Update[X]) error) error {
	return core.SyncConsume(c, in, fold)
}

// StopWhen stops the automaton as soon as a published snapshot of buf
// satisfies accept — automated whole-output accuracy control (§III-A). The
// returned channel delivers the accepted (or final) snapshot.
func StopWhen[T any](a *Automaton, buf *Buffer[T], accept func(Snapshot[T]) bool) <-chan Snapshot[T] {
	return core.StopWhen(a, buf, accept)
}

// StopAfter stops the automaton once d elapses unless it finishes first —
// a hard real-time budget (§III-A). The returned cancel disarms the
// deadline.
func StopAfter(a *Automaton, d time.Duration) (cancel func()) {
	return core.StopAfter(a, d)
}

// ContractPass is one accuracy level available to a contract-mode stage
// (§II-B distinguishes contract from interruptible anytime algorithms).
type ContractPass[T any] = core.ContractPass[T]

// RunContract executes an iterative stage under a time contract: it runs
// the most accurate pass whose estimated cost fits the budget, then keeps
// upgrading while budget remains. It returns the index of the best pass
// that ran.
func RunContract[T any](c *Context, out *Buffer[T], passes []ContractPass[T], deadline time.Duration) (int, error) {
	return core.RunContract(c, out, passes, deadline)
}
