package anytime

import "anytime/internal/pix"

// Image is the fixed-point image type used by the benchmark applications:
// W x H pixels with C interleaved int32 channels.
type Image = pix.Image

// NewGrayImage returns a zeroed single-channel image.
func NewGrayImage(w, h int) (*Image, error) { return pix.NewGray(w, h) }

// NewRGBImage returns a zeroed three-channel image.
func NewRGBImage(w, h int) (*Image, error) { return pix.NewRGB(w, h) }

// SyntheticGray returns a deterministic single-channel 8-bit test image.
func SyntheticGray(w, h int, seed uint64) (*Image, error) { return pix.SyntheticGray(w, h, seed) }

// SyntheticRGB returns a deterministic three-channel 8-bit test image.
func SyntheticRGB(w, h int, seed uint64) (*Image, error) { return pix.SyntheticRGB(w, h, seed) }

// HoldFill renders a displayable approximation from a partially computed
// image: unfilled pixels take the value of their nearest filled
// tree-sampling ancestor, turning a tree-order prefix into a complete
// low-resolution image (the approximate outputs of paper Figures 16–18).
func HoldFill(src *Image, filled []bool) (*Image, error) { return pix.HoldFill(src, filled) }

// SnapshotMode selects how a Snapshotter renders a diffusive image stage's
// published approximations: fresh immutable clones, or the zero-copy
// dirty-tile ring.
type SnapshotMode = pix.SnapshotMode

const (
	// SnapshotClone renders every publish into a fresh image; snapshots are
	// immutable forever and may be retained by any consumer.
	SnapshotClone = pix.SnapshotClone
	// SnapshotTiles renders publishes into a small ring of reused images,
	// copying only tiles dirtied since that slot was last published.
	// Bit-identical content at a fraction of the cost; snapshots are
	// overwritten after ring-depth further publishes, so consumers must
	// read promptly or copy.
	SnapshotTiles = pix.SnapshotTiles
)

// Snapshotter renders hold-filled approximations of a tree-sampled
// diffusive image stage, tracking computed pixels and dirty tiles. The
// stage writes pixels into the working image and calls Mark; Snapshot
// (called during round quiescence) renders the publishable approximation
// per the selected mode.
type Snapshotter = pix.Snapshotter

// NewSnapshotter returns a snapshotter over working for the given worker
// count and snapshot mode.
func NewSnapshotter(working *Image, workers int, mode SnapshotMode) (*Snapshotter, error) {
	return pix.NewSnapshotter(working, workers, mode)
}

// WritePNMFile encodes an image to a binary PGM (1 channel) or PPM
// (3 channels) file.
func WritePNMFile(path string, im *Image) error { return pix.WritePNMFile(path, im) }

// ReadPNMFile decodes a binary PGM/PPM file.
func ReadPNMFile(path string) (*Image, error) { return pix.ReadPNMFile(path) }
