package anytime

import "anytime/internal/pix"

// Image is the fixed-point image type used by the benchmark applications:
// W x H pixels with C interleaved int32 channels.
type Image = pix.Image

// NewGrayImage returns a zeroed single-channel image.
func NewGrayImage(w, h int) (*Image, error) { return pix.NewGray(w, h) }

// NewRGBImage returns a zeroed three-channel image.
func NewRGBImage(w, h int) (*Image, error) { return pix.NewRGB(w, h) }

// SyntheticGray returns a deterministic single-channel 8-bit test image.
func SyntheticGray(w, h int, seed uint64) (*Image, error) { return pix.SyntheticGray(w, h, seed) }

// SyntheticRGB returns a deterministic three-channel 8-bit test image.
func SyntheticRGB(w, h int, seed uint64) (*Image, error) { return pix.SyntheticRGB(w, h, seed) }

// HoldFill renders a displayable approximation from a partially computed
// image: unfilled pixels take the value of their nearest filled
// tree-sampling ancestor, turning a tree-order prefix into a complete
// low-resolution image (the approximate outputs of paper Figures 16–18).
func HoldFill(src *Image, filled []bool) (*Image, error) { return pix.HoldFill(src, filled) }

// WritePNMFile encodes an image to a binary PGM (1 channel) or PPM
// (3 channels) file.
func WritePNMFile(path string, im *Image) error { return pix.WritePNMFile(path, im) }

// ReadPNMFile decodes a binary PGM/PPM file.
func ReadPNMFile(path string) (*Image, error) { return pix.ReadPNMFile(path) }
