package anytime_test

// Ablation benchmarks for the design choices DESIGN.md calls out, beyond
// the paper's numbered figures:
//
//   - histeq input reordering (§IV-C3): the in-memory data reorganization
//     the paper proposes to recover sampling locality.
//   - the §IV-C2 scheduling policies on the Figure 2 pipeline (simulated).
//   - the iterative approximate-storage voltage ladder (§III-B1) versus
//     the diffusive sampled automaton on 2dconv.

import (
	"context"
	"testing"
	"time"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/histeq"
	"anytime/internal/cachesim"
	"anytime/internal/pix"
	"anytime/internal/sched"
	"anytime/internal/store"
)

// BenchmarkAblation_HisteqReorder measures the histeq automaton's
// end-to-end runtime with the pseudo-random input read directly (random
// access) versus through a pre-reordered copy (sequential access).
func BenchmarkAblation_HisteqReorder(b *testing.B) {
	in, err := pix.SyntheticGray(512, 512, 1)
	if err != nil {
		b.Fatal(err)
	}
	run := func(reorder bool) time.Duration {
		r, err := histeq.New(in, histeq.Config{Workers: 2, ReorderInput: reorder})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if err := r.Automaton.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := r.Automaton.Wait(); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var plain, reordered time.Duration
	for i := 0; i < b.N; i++ {
		plain = run(false)
		reordered = run(true)
	}
	b.ReportMetric(float64(plain.Microseconds()), "random-us")
	b.ReportMetric(float64(reordered.Microseconds()), "reordered-us")
	b.ReportMetric(float64(plain)/float64(reordered), "speedup-x")
}

// BenchmarkAblation_SchedPolicies reports the simulated §IV-C2 tradeoff on
// the Figure 2 pipeline at a 16-worker budget.
func BenchmarkAblation_SchedPolicies(b *testing.B) {
	p := sched.Figure2Pipeline()
	var rows []sched.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sched.Compare(p, 16, sched.DefaultPolicies())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Policy {
		case "first-output":
			b.ReportMetric(r.FirstOutput, "first-output-ttfo")
			b.ReportMetric(r.MeanGap, "first-output-gap")
		case "output-rate":
			b.ReportMetric(r.FirstOutput, "output-rate-ttfo")
			b.ReportMetric(r.MeanGap, "output-rate-gap")
		}
	}
}

// BenchmarkAblation_StorageLadder compares the iterative voltage-ladder
// automaton (§III-B1) with the diffusive sampled automaton (§III-B2) on
// 2dconv: time to the precise output and the ladder's modeled storage
// energy.
func BenchmarkAblation_StorageLadder(b *testing.B) {
	in, err := pix.SyntheticGray(192, 192, 1)
	if err != nil {
		b.Fatal(err)
	}
	levels := store.DefaultLevels
	var ladder, diffusive time.Duration
	for i := 0; i < b.N; i++ {
		lr, err := conv2d.NewIterativeStorage(in, conv2d.IterStorageConfig{Levels: levels, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if err := lr.Automaton.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := lr.Automaton.Wait(); err != nil {
			b.Fatal(err)
		}
		ladder = time.Since(start)

		dr, err := conv2d.New(in, conv2d.Config{})
		if err != nil {
			b.Fatal(err)
		}
		start = time.Now()
		if err := dr.Automaton.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := dr.Automaton.Wait(); err != nil {
			b.Fatal(err)
		}
		diffusive = time.Since(start)
	}
	b.ReportMetric(float64(ladder.Microseconds()), "ladder-us")
	b.ReportMetric(float64(diffusive.Microseconds()), "diffusive-us")
	b.ReportMetric(conv2d.LadderEnergy(levels), "ladder-storage-energy-x")
}

// BenchmarkAblation_CachePrefetch reports the §IV-C3 locality study: miss
// rates of the pseudo-random sweep without prefetching versus with the
// paper's deterministic permutation prefetcher.
func BenchmarkAblation_CachePrefetch(b *testing.B) {
	var rows []cachesim.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cachesim.Study(cachesim.Config{SizeWords: 4096, Ways: 8, LineWords: 16}, 1<<16, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Permutation == "pseudo-random" && r.Prefetcher == "none" {
			b.ReportMetric(r.MissRate, "rand-nopf-missrate")
		}
		if r.Permutation == "pseudo-random" && r.Prefetcher == "permutation" {
			b.ReportMetric(r.MissRate, "rand-permpf-missrate")
		}
		if r.Permutation == "sequential" && r.Prefetcher == "none" {
			b.ReportMetric(r.MissRate, "seq-nopf-missrate")
		}
	}
}
