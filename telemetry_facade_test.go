package anytime_test

// The telemetry facade exercised exactly as a downstream user would:
// instrument a two-stage pipeline (hooks + buffer + stream observers + a
// shared tracer), run it to the precise output, and read the results back
// through the exposition formats.

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"anytime"
)

func TestFacadeTelemetryInstrumentsPipeline(t *testing.T) {
	reg := anytime.NewMetricsRegistry()
	tr := anytime.NewTracer()

	st, err := anytime.NewStream[int](4)
	if err != nil {
		t.Fatal(err)
	}
	anytime.ObserveStream(reg, st, "edge")
	out := anytime.NewBuffer[int64]("total", nil)
	anytime.ObserveBuffer(reg, out)
	anytime.TraceBuffer(tr, out) // telemetry and tracer share the buffer

	a := anytime.New()
	const n = 64
	if err := a.AddStage("produce", func(c *anytime.Context) error {
		for i := 1; i <= n; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if err := st.Send(c, anytime.Update[int]{Seq: i, Data: i, Last: i == n}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("sum", func(c *anytime.Context) error {
		var acc int64
		return anytime.SyncConsume(c, st, func(u anytime.Update[int]) error {
			acc += int64(u.Data)
			if u.Seq%16 == 0 || u.Last {
				if _, err := out.Publish(acc, u.Last); err != nil {
					return err
				}
			}
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	a.SetHooks(anytime.PipelineHooks(reg))
	tr.Start()
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}

	snap, ok := out.Latest()
	if !ok || !snap.Final || snap.Value != n*(n+1)/2 {
		t.Fatalf("final snapshot = %+v, %v", snap, ok)
	}
	if got := len(tr.Events()); got != 4 {
		t.Errorf("tracer saw %d publishes, want 4", got)
	}

	// The same run must be visible through every exposition surface.
	var prom strings.Builder
	if err := anytime.WriteMetrics(reg, &prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		anytime.MetricCheckpointTotal + `{stage="produce"}`,
		anytime.MetricBufferPublish + `{buffer="total"} 4`,
		anytime.MetricBufferVersion + `{buffer="total"} 4`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	var summary strings.Builder
	if err := anytime.WriteMetricsSummary(reg, &summary); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary.String(), anytime.MetricStreamDepthMax) {
		t.Errorf("summary missing stream depth:\n%s", summary.String())
	}

	rec := httptest.NewRecorder()
	anytime.MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Header().Get("Content-Type"), "text/plain") {
		t.Errorf("handler content type %q", rec.Header().Get("Content-Type"))
	}
	if rec.Body.String() != prom.String() {
		t.Error("handler output differs from WriteMetrics")
	}
}

func TestFacadeAccuracyRecorder(t *testing.T) {
	ref, err := anytime.SyntheticGray(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := anytime.NewBuffer[*anytime.Image]("img", nil)
	rec := anytime.NewAccuracyRecorder(ref)
	anytime.ObserveAccuracy(rec, buf)

	a := anytime.New()
	if err := a.AddStage("s", func(c *anytime.Context) error {
		blank, err := anytime.NewGrayImage(16, 16)
		if err != nil {
			return err
		}
		if _, err := buf.Publish(blank, false); err != nil {
			return err
		}
		_, err = buf.Publish(ref, true) // bit-exact: +Inf dB
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rec.Begin()
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	curve, err := rec.Curve()
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve has %d samples, want 2", len(curve))
	}
	if curve[1].SNR <= curve[0].SNR {
		t.Errorf("accuracy did not improve: %v then %v dB", curve[0].SNR, curve[1].SNR)
	}
	if !curve[1].Final {
		t.Error("last sample not marked final")
	}
	var json strings.Builder
	if err := rec.WriteJSON(&json); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(json.String(), `"snr_db":"inf"`) {
		t.Errorf("JSON export missing the bit-exact sample: %s", json.String())
	}
}
